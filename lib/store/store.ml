module Faultpoint = Lalr_guard.Faultpoint
module Trace = Lalr_trace.Trace

(* The counters are Atomic so one store can be shared by a pool of
   worker domains (lalrgen serve) without losing increments; the file
   operations themselves were always safe to run concurrently (atomic
   temp+rename writes, paranoid reads). *)
type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  corrupt : int Atomic.t;
  writes : int Atomic.t;
  errors : int Atomic.t;
  skipped_small : int Atomic.t;
}

(* 2: Lalr.stats and Lalr.follow_sets grew Digraph-profile fields in
   the tracing PR; entries marshalled under v1 have a different shape.
   3: the data-layout PR — Lalr.relations went from boxed lists and a
   Hashtbl reduction index to packed CSR arrays and a dense per-state
   index, and Lalr.stats grew the memory-footprint member; every
   artifact embedding a relations or stats value changed shape. *)
let format_version = 3

let magic = "LALRART1"

(* Marshal output is not portable across compiler versions; stamping
   the OCaml version turns a compiler upgrade into a clean skew-miss
   instead of an unmarshal of foreign bytes. *)
let stamp =
  Printf.sprintf "lalr-store-v%d/ocaml-%s" format_version Sys.ocaml_version

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  (try mkdir_p dir
   with Unix.Unix_error (e, _, _) ->
     raise
       (Sys_error
          (Printf.sprintf "%s: cannot create store directory: %s" dir
             (Unix.error_message e))));
  if not (Sys.is_directory dir) then
    raise (Sys_error (Printf.sprintf "%s: not a directory" dir));
  { dir; hits = Atomic.make 0; misses = Atomic.make 0;
    corrupt = Atomic.make 0; writes = Atomic.make 0; errors = Atomic.make 0;
    skipped_small = Atomic.make 0 }

let create_opt ~dir = match create ~dir with
  | t -> Some t
  | exception Sys_error _ -> None

let dir t = t.dir

(* Below this much compute (seconds), loading an entry costs more than
   recomputing it (BENCH_pr4: the warm 'json' row ran at 0.75x). *)
let small_threshold = 1e-3

let skip_small t =
  Atomic.incr t.skipped_small;
  Trace.count "store.skip_small"

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

let key (g : Grammar.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Grammar.digest g);
  Buffer.add_char buf '\x00';
  Buffer.add_string buf stamp;
  Buffer.add_char buf '\x00';
  (* Locations are part of the key, not the digest: artifacts embed the
     grammar, and diagnostics rendered from a cached entry must cite
     the caller's file and lines, not some structurally equal twin's. *)
  let locs = g.Grammar.locs in
  Buffer.add_string buf locs.Grammar.source;
  let loc (l : Grammar.loc) =
    Buffer.add_string buf l.Grammar.file;
    Buffer.add_char buf ':';
    Buffer.add_string buf (string_of_int l.Grammar.line);
    Buffer.add_char buf ';'
  in
  Array.iter loc locs.Grammar.prod_locs;
  Array.iter loc locs.Grammar.term_locs;
  Array.iter loc locs.Grammar.prec_locs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let entry_path t g = Filename.concat t.dir (key g ^ ".art")

(* ------------------------------------------------------------------ *)
(* The bundle                                                          *)
(* ------------------------------------------------------------------ *)

type bundle = {
  b_grammar : Grammar.t;
  b_analysis : Analysis.t option;
  b_lr0 : Lalr_automaton.Lr0.t option;
  b_relations : Lalr_core.Lalr.relations option;
  b_follow : Lalr_core.Lalr.follow_sets option;
  b_la : Lalr_core.Lalr.t option;
  b_slr : Lalr_baselines.Slr.t option;
  b_nqlalr : Lalr_baselines.Nqlalr.t option;
  b_propagation : Lalr_baselines.Propagation.t option;
  b_lr1 : Lalr_baselines.Lr1.t option;
  b_tables : Lalr_tables.Tables.t option;
  b_slr_tables : Lalr_tables.Tables.t option;
  b_nqlalr_tables : Lalr_tables.Tables.t option;
  b_classification : Lalr_tables.Classify.verdict option;
  b_classification_lr1 : Lalr_tables.Classify.verdict option;
}

let empty_bundle g =
  {
    b_grammar = g;
    b_analysis = None;
    b_lr0 = None;
    b_relations = None;
    b_follow = None;
    b_la = None;
    b_slr = None;
    b_nqlalr = None;
    b_propagation = None;
    b_lr1 = None;
    b_tables = None;
    b_slr_tables = None;
    b_nqlalr_tables = None;
    b_classification = None;
    b_classification_lr1 = None;
  }

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let u16_be n = String.init 2 (fun i -> Char.chr ((n lsr (8 * (1 - i))) land 0xFF))
let u64_be n = String.init 8 (fun i -> Char.chr ((n lsr (8 * (7 - i))) land 0xFF))

let read_u16_be s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

let read_u64_be s off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

(* Why the load path never trusts a single check: truncation is caught
   by the length fields, bit-flips by the MD5 over the payload, version
   skew by the stamp, and a same-length same-checksum impostor (or an
   MD5 collision) by re-keying the rehydrated grammar. Only then is the
   unmarshalled value believed. *)
type verdict = Served of bundle | Absent | Bad of string

let read_entry path want_key =
  if not (Sys.file_exists path) then Absent
  else
    let raw =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (* A read-side corruption injection damages the bytes after they
       leave the disk — the checks below must catch it. *)
    let raw =
      if Faultpoint.take_corrupt "store-read" && String.length raw > 0 then begin
        let b = Bytes.of_string raw in
        let i = Bytes.length b - 1 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
        Bytes.to_string b
      end
      else raw
    in
    let mlen = String.length magic in
    if String.length raw < mlen + 2 then Bad "truncated header"
    else if String.sub raw 0 mlen <> magic then Bad "bad magic"
    else
      let slen = read_u16_be raw mlen in
      let sum_off = mlen + 2 + slen in
      if String.length raw < sum_off then Bad "truncated stamp"
      else if String.sub raw (mlen + 2) slen <> stamp then
        Bad
          (Printf.sprintf "version skew (entry %S, expected %S)"
             (String.sub raw (mlen + 2) slen)
             stamp)
      else if String.length raw < sum_off + 16 + 8 then Bad "truncated frame"
      else
        let sum = String.sub raw sum_off 16 in
        let plen = read_u64_be raw (sum_off + 16) in
        let payload_off = sum_off + 16 + 8 in
        if String.length raw - payload_off <> plen then
          Bad
            (Printf.sprintf "payload length mismatch (%d of %d bytes)"
               (String.length raw - payload_off)
               plen)
        else
          let payload = String.sub raw payload_off plen in
          if Digest.string payload <> sum then Bad "payload checksum mismatch"
          else
            match (Marshal.from_string payload 0 : bundle) with
            | b ->
                if key b.b_grammar <> want_key then Bad "key mismatch"
                else Served b
            | exception Failure _ ->
                (* Marshal signals damaged input with [Failure]; anything
                   else coming out of here is a real bug that load's
                   absorption boundary turns into a counted error. *)
                Bad "unmarshal failure"

let quarantine t path reason =
  Atomic.incr t.corrupt;
  Trace.count "store.corrupt";
  Trace.instant ~attrs:(fun () -> [ ("reason", Trace.Str reason) ])
    "store.quarantine";
  try Sys.rename path (path ^ ".corrupt")
  with Sys_error _ -> (
    ignore reason;
    (* Even deleting may fail (read-only media): the entry will simply
       fail the same checks next time. *)
    try Sys.remove path with Sys_error _ -> ())

let load t g =
  let path = entry_path t g in
  Trace.with_span "store.load" (fun () ->
      try
        Faultpoint.check "store-read";
        match read_entry path (key g) with
        | Served b ->
            Atomic.incr t.hits;
            Trace.count "store.hit";
            Some b
        | Absent ->
            Atomic.incr t.misses;
            Trace.count "store.miss";
            None
        | Bad reason ->
            quarantine t path reason;
            Atomic.incr t.misses;
            Trace.count "store.miss";
            None
      with _ ->
        (* I/O failure (or an injected one) mid-read: a miss, never an
           escape — the store must not be able to fail the run. *)
        Atomic.incr t.errors;
        Atomic.incr t.misses;
        Trace.count "store.error";
        Trace.count "store.miss";
        None)
[@@lalr.allow
  D004
    "absorption contract (DESIGN §11): the cache is an optional \
     acceleration and must never fail the run — every load failure, \
     including injected Budget exceptions at the store-read site, \
     becomes a counted miss (the CI fault matrix pins store:* to exit 0)"]

let save t bundle =
  Trace.with_span "store.save" @@ fun () ->
  try
    Faultpoint.check "store-write";
    let path = entry_path t bundle.b_grammar in
    let payload = Marshal.to_string bundle [] in
    let sum = Digest.string payload in
    (* A write-side corruption injection damages the payload AFTER the
       checksum is computed — exactly the detectable-on-read shape. *)
    let payload =
      if Faultpoint.take_corrupt "store-write" && String.length payload > 0
      then begin
        let b = Bytes.of_string payload in
        let i = Bytes.length b / 2 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
        Bytes.to_string b
      end
      else payload
    in
    let tmp =
      Filename.concat t.dir
        (Printf.sprintf ".tmp.%d.%s" (Unix.getpid ())
           (Filename.basename path))
    in
    let oc = open_out_bin tmp in
    (try
       output_string oc magic;
       output_string oc (u16_be (String.length stamp));
       output_string oc stamp;
       output_string oc sum;
       output_string oc (u64_be (String.length payload));
       output_string oc payload;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path;
    Atomic.incr t.writes;
    Trace.count "store.write"
  with _ ->
    Atomic.incr t.errors;
    Trace.count "store.error"
[@@lalr.allow
  D004
    "absorption contract (DESIGN §11): a failed save, including an \
     injected one at the store-write site, is a counted error and \
     nothing else — the artifact will simply be recomputed next run"]

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

type stats = {
  hits : int;
  misses : int;
  corrupt : int;
  writes : int;
  errors : int;
  skipped_small : int;
}

let stats (t : t) =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    corrupt = Atomic.get t.corrupt;
    writes = Atomic.get t.writes;
    errors = Atomic.get t.errors;
    skipped_small = Atomic.get t.skipped_small;
  }

let pp_stats ppf t =
  Format.fprintf ppf
    "store %s: %d hits, %d misses, %d corrupt, %d writes, %d errors, %d \
     skipped-small"
    t.dir (Atomic.get t.hits) (Atomic.get t.misses) (Atomic.get t.corrupt)
    (Atomic.get t.writes) (Atomic.get t.errors) (Atomic.get t.skipped_small)
