(** The persistent artifact store: a crash-proof on-disk cache of
    engine artifacts, keyed by grammar content.

    The paper's pipeline is naturally staged — DR → reads/Read →
    includes/Follow → lookback/LA — and every stage output is a pure
    function of the grammar, so completed stages are well-defined
    artifacts worth keeping {e across} processes: a fleet re-analysing
    the same grammars (CI, a batch run, a service) should pay for each
    automaton once, ever.

    {2 Contract}

    The store makes exactly two promises, in this order:

    + {b never a silently wrong answer} — an entry is served only if
      its magic number, format/compiler stamp, payload length, payload
      checksum {e and} the rehydrated grammar's content digest all
      match what was written;
    + {b never a failure} — any violation (truncation, bit-flip,
      version skew, unwritable directory, an I/O error mid-read) is
      detected, the file is quarantined (renamed [*.corrupt]), the
      event is counted, and the caller sees an ordinary cache miss.
      Every entry point catches {e all} exceptions: a cache is an
      optional acceleration, never a correctness or availability
      dependency.

    {2 On-disk format}

    One file per grammar under the store directory, named
    [<key>.art] where [<key>] is {!key} (grammar content digest +
    source locations + format stamp, hex MD5):

    {v
    magic   "LALRART1"                         8 bytes
    stamp   u16 length + bytes                 format version + OCaml
                                               version (Marshal is not
                                               stable across compilers)
    sum     MD5 of payload                     16 bytes
    len     u64 big-endian payload length      8 bytes
    payload Marshal of the artifact bundle     len bytes
    v}

    Writes are atomic: a temp file in the same directory, then
    [rename]. A reader never observes a half-written entry.

    Fault-injection sites [store-read] and [store-write]
    ({!Lalr_guard.Faultpoint}) sit inside the catch-alls, so the CI
    matrix can prove the absorption contract. *)

type t

val create : dir:string -> t
(** Opens (creating if needed, like [mkdir -p]) the store directory.
    Raises [Sys_error] if the path exists and is not a directory or
    cannot be created — the only raising entry point, because a store
    the user explicitly asked for ([--cache DIR]) that cannot exist at
    all is a configuration error, not a cache miss. *)

val create_opt : dir:string -> t option
(** Non-raising {!create}: [None] when the directory cannot be
    opened. *)

val dir : t -> string

val small_threshold : float
(** Seconds of compute (1 ms) below which persisting a grammar is not
    worth it: BENCH_pr4 measured warm-cache loads of sub-millisecond
    grammars running slower than recomputation. The skip policy lives
    in [Engine.persist]; the threshold and the counter live here. *)

val skip_small : t -> unit
(** Records that a caller declined to persist a sub-threshold grammar
    (the [skipped_small] stat). *)

val format_version : int
(** Bumped whenever the marshalled artifact types change shape; part
    of the stamp, so entries written by other versions are skewed
    misses, never misreads. *)

val key : Grammar.t -> string
(** The store key: hex MD5 over {!Grammar.digest} (structure), the
    source locations (two structurally equal grammars from different
    files must not share an entry — their diagnostics print different
    positions), and the format stamp. *)

val entry_path : t -> Grammar.t -> string
(** Where this grammar's entry lives (whether or not it exists) —
    exposed for tests and tooling that damage or inspect entries. *)

(** {2 The artifact bundle}

    What one entry holds: any subset of the engine's slot artifacts,
    marshalled {e together} in one value so the aliasing between them
    (relations share the automaton's arrays, [la] shares the relation
    arrays, tables share the automaton) survives the round trip. *)

type bundle = {
  b_grammar : Grammar.t;
      (** the grammar the artifacts belong to; its {!key} must equal
          the entry's, or the entry is treated as corrupt *)
  b_analysis : Analysis.t option;
  b_lr0 : Lalr_automaton.Lr0.t option;
  b_relations : Lalr_core.Lalr.relations option;
  b_follow : Lalr_core.Lalr.follow_sets option;
  b_la : Lalr_core.Lalr.t option;
  b_slr : Lalr_baselines.Slr.t option;
  b_nqlalr : Lalr_baselines.Nqlalr.t option;
  b_propagation : Lalr_baselines.Propagation.t option;
  b_lr1 : Lalr_baselines.Lr1.t option;
  b_tables : Lalr_tables.Tables.t option;
  b_slr_tables : Lalr_tables.Tables.t option;
  b_nqlalr_tables : Lalr_tables.Tables.t option;
  b_classification : Lalr_tables.Classify.verdict option;
  b_classification_lr1 : Lalr_tables.Classify.verdict option;
}

val empty_bundle : Grammar.t -> bundle

val load : t -> Grammar.t -> bundle option
(** [None] is a miss — no entry, or an entry that failed any check and
    was quarantined. Never raises. *)

val save : t -> bundle -> unit
(** Atomically (re)writes the grammar's entry. Failures are counted
    and swallowed. Never raises. *)

(** {2 Observability} *)

type stats = {
  hits : int;  (** loads that served a verified entry *)
  misses : int;  (** loads that found nothing servable *)
  corrupt : int;
      (** quarantine events: truncation, bad magic, version skew,
          checksum or digest mismatch (each also counts as a miss) *)
  writes : int;  (** successful saves *)
  errors : int;  (** absorbed I/O failures (load or save) *)
  skipped_small : int;
      (** persists declined because the grammar computed in under
          {!small_threshold} *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> t -> unit
(** One line, printed by [lalrgen --timings] alongside the engine
    stage table. *)
