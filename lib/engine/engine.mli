(** The query engine: one demand-driven, memoizing analysis pipeline
    per grammar.

    The paper's computation is a DAG of derived artifacts —

    {v
    analysis (nullable/FIRST/FOLLOW)
        │
       lr0 ──────────────┬──────────┬──────────┬─────────────┐
        │                │          │          │             │
    relations          slr       nqlalr   propagation       lr1
    (DR/reads/           │          │          │         (canonical)
     includes/        slr_tables nqlalr_tables│             │
     lookback)           │          │          │             │
        │                │          │          │             │
     follow              └──────────┴───── classification ───┘
        │                                      ▲
       la (the DeRemer–Pennello sets)          │
        │                                      │
     tables ───────────────────────────────────┘
    v}

    — and every consumer (the CLI, the lint passes, the report
    printers, the experiment tables, the benchmarks) needs some
    subtree of it. An [Engine.t] owns that state for one grammar:
    each artifact lives in a {e slot} that is computed on first demand
    and returned from memory ever after, so a process that classifies,
    lints and prints tables for the same grammar builds the LR(0)
    automaton and the relations exactly once.

    {2 Why there is no [invalidate]}

    Slots are force-once by design, not by omission. A {!Grammar.t} is
    immutable, so every artifact here is a pure function of the
    grammar the engine was created with: there is no event that could
    make a forced slot stale. An [invalidate] (or any
    recompute-on-change machinery) would buy nothing and would cost
    the two properties consumers rely on:

    - {b aliasing is safe} — artifacts share substructure (a
      {!Lalr_core.Lalr.t} aliases the arrays of the [relations] slot;
      tables alias the automaton). Invalidation would have to track
      those aliases or risk consumers holding dangling halves of a
      pipeline.
    - {b counters mean something} — [misses] per slot is at most 1, so
      {!stats} doubles as an oracle that no layer recomputes a stage
      behind the engine's back (the lint self-check test asserts
      exactly this).

    To analyse a changed grammar, create a new engine; the old one is
    garbage the moment you drop it. *)

type t

val create :
  ?budget:Lalr_guard.Budget.t ->
  ?analysis:Analysis.t ->
  ?store:Lalr_store.Store.t ->
  Grammar.t ->
  t
(** A fresh engine with every slot unforced. Creation does no work
    beyond an optional store probe. [?analysis] seeds the [analysis]
    slot with a caller-computed value (which must be the analysis of
    [grammar]); the slot then reports as forced with zero misses. The
    grammar is analysed as given — the engine never reduces it
    (callers that lint arbitrary input reduce first; see
    [Lalr_lint.Context]).

    [?budget] bounds every slot computation: each force installs the
    budget for its extent (stage = slot name; algorithms refine it via
    {!Lalr_guard.Budget.with_stage}). The budget is shared across
    slots, so its caps bound the whole pipeline. Without [?budget],
    slot computations run exactly as before — the check points are
    no-ops.

    [?store] consults the persistent artifact store
    ({!Lalr_store.Store}): a verified cache entry for [grammar] seeds
    the matching slots, which then report as forced with zero misses
    (a hit in the store's counters). A missing, stale, or corrupt
    entry is an ordinary miss — slots start empty and {!persist}
    rewrites the entry. A [?analysis] seed takes precedence over the
    store's copy for the analysis slot. *)

val grammar : t -> Grammar.t
val budget : t -> Lalr_guard.Budget.t option
val store : t -> Lalr_store.Store.t option

val persist : ?force:bool -> t -> unit
(** Writes every currently forced slot to the store as one bundle
    (atomically replacing the grammar's entry); a no-op without
    [?store]. Callers run it at exit — including after a budget trip
    or a verdict exit — so the completed prefix of an interrupted
    pipeline still warms the next process. Never raises.

    Grammars whose entire computation took less than
    {!Lalr_store.Store.small_threshold} of wall time are {e not}
    persisted (counted as [skipped_small] in the store's stats):
    rehydrating them costs more than recomputing. [~force] (default
    [false]) persists unconditionally — for tests and deliberate cache
    warming. *)

val peek_lr0_states : t -> int option
(** The LR(0) state count if that slot is forced, without forcing it
    (a probe for reporting layers; does not perturb hit/miss
    counters). *)

(** {2 The failure boundary}

    Budgeted or not, an engine's computations have exactly three
    outcomes: a value, a budget trip, or a broken internal invariant.
    {!run} is the boundary that turns the two exceptional outcomes
    into data; inside it, any slot accessor (or combination) may be
    used freely. *)

type failure =
  | Budget_exceeded of Lalr_guard.Budget.exceeded
      (** a resource cap tripped; the record names the stage, the
          resource, consumed vs. cap, and any partial artifact *)
  | Internal_error of { stage : string; invariant : string }
      (** a broken invariant (the typed replacement for
          [assert false]), or a stack overflow during analysis *)

val run : t -> (t -> 'a) -> ('a, failure) result
(** [run e f] applies [f e], catching {!Lalr_guard.Budget.Exceeded},
    {!Lalr_guard.Budget.Internal_error}, [Stack_overflow],
    [Assert_failure] (a backstop for invariants not yet converted to
    the typed form) and — last — {e any other} exception, which
    becomes an [Internal_error] naming the current stage. Only the
    asynchronous [Out_of_memory] and [Sys.Break] escape. A slot
    interrupted by a failure stays unforced and may be re-forced under
    a fresh engine with looser caps. *)

val pp_failure : Format.formatter -> failure -> unit

(** {2 Partial results}

    Graceful degradation: when a consumer would rather render what
    finished than abort, {!run_partial} pairs the outcome with an
    explicit completeness marker and the list of completed stages.
    There is no way to get a partial value {e without} the marker —
    incomplete output can never masquerade as complete. *)

type completeness =
  | Complete
  | Incomplete of failure
      (** the failure that interrupted the pipeline; the slot it
          interrupted stayed unforced *)

type 'a partial = {
  pr_value : 'a option;
      (** [Some] iff {!pr_completeness} is [Complete] *)
  pr_completeness : completeness;
  pr_completed : string list;
      (** names of the slots that finished (pipeline order) — the
          artifacts a renderer may still draw on via the accessors,
          which are now memory reads for exactly these stages *)
}

val run_partial : t -> (t -> 'a) -> 'a partial
(** {!run}, keeping the completed prefix: on failure the caller gets
    the stage names that finished instead of only the error, and may
    re-enter the engine to render them ([--keep-going]). *)

val pp_completeness : Format.formatter -> completeness -> unit
(** ["complete"], or ["INCOMPLETE (<failure>)"] — loud by design. *)

(** {2 Slots}

    Each accessor forces its slot (and, transitively, the slots it
    depends on) on first call and is a memory read afterwards. All
    returned values are owned by the engine and shared between
    consumers: treat them as read-only. *)

val analysis : t -> Analysis.t
val lr0 : t -> Lalr_automaton.Lr0.t

val relations : t -> Lalr_core.Lalr.relations
(** Stage 1 of {!Lalr_core.Lalr}: DR/reads/includes/lookback. *)

val follow : t -> Lalr_core.Lalr.follow_sets
(** Stage 2: the Read and Follow Digraph fixpoints. *)

val lalr : t -> Lalr_core.Lalr.t
(** Stage 3, the [la] slot: the exact DeRemer–Pennello look-ahead
    sets. Shares the arrays of {!relations} and {!follow}. *)

val slr : t -> Lalr_baselines.Slr.t
val nqlalr : t -> Lalr_baselines.Nqlalr.t
val propagation : t -> Lalr_baselines.Propagation.t
val lr1 : t -> Lalr_baselines.Lr1.t
(** The canonical LR(1) machine — the one genuinely expensive slot;
    nothing forces it implicitly except {!classification} on small
    grammars. *)

val tables : t -> Lalr_tables.Tables.t
(** ACTION/GOTO under the exact LALR(1) sets. *)

val slr_tables : t -> Lalr_tables.Tables.t
val nqlalr_tables : t -> Lalr_tables.Tables.t

type method_ = [ `Lalr | `Slr | `Nqlalr ]

val tables_for : t -> method_ -> Lalr_tables.Tables.t
(** The table slot for a look-ahead method ([`Lalr] = {!tables}). *)

val lr1_limit : int
(** Production-count threshold (250) above which {!classification}
    skips the canonical LR(1) construction by default. *)

val classification : ?with_lr1:bool -> t -> Lalr_tables.Classify.verdict
(** The full hierarchy verdict, assembled from the slots above.
    [with_lr1] defaults to [n_productions ≤ lr1_limit]; the two
    variants are distinct slots ([classification] and
    [classification+lr1]) since their verdicts differ. *)

(** {2 Observability}

    Per-slot instrumentation, surfaced by [lalrgen --timings]. *)

type stage = {
  stage : string;  (** slot name, e.g. ["relations"] *)
  forced : bool;
  misses : int;  (** computations: 0 or 1, by construction *)
  hits : int;  (** memoized reads after the computation *)
  wall : float;  (** seconds spent computing, exclusive of deps *)
}

val stats : t -> stage list
(** All slots in pipeline order, forced or not. The [wall] of a slot
    excludes the time of the slots it depends on — dependencies are
    forced before its timer starts — so the values sum to the real
    total. *)

val find_stage : t -> string -> stage
(** Raises [Not_found] for an unknown stage name. *)

val total_wall : t -> float
(** Σ [wall] over all slots. *)

val pp_stats : Format.formatter -> t -> unit
(** The [--timings] rendering: one line per forced slot (unforced
    slots are elided), then the total. *)
