module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Slr = Lalr_baselines.Slr
module Nqlalr = Lalr_baselines.Nqlalr
module Lr1 = Lalr_baselines.Lr1
module Propagation = Lalr_baselines.Propagation
module Tables = Lalr_tables.Tables
module Classify = Lalr_tables.Classify
module Budget = Lalr_guard.Budget
module Faultpoint = Lalr_guard.Faultpoint
module Store = Lalr_store.Store
module Trace = Lalr_trace.Trace

type 'a slot = {
  s_name : string;
  s_span : string;  (* "engine.<name>", precomputed so the disarmed
                       tracing probe allocates nothing *)
  mutable s_value : 'a option;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_wall : float;
}

let slot name =
  (* Every slot is a fault-injection site; creating one for a name the
     registry does not know would silently un-test that slot. *)
  assert (Faultpoint.find_site name <> None);
  { s_name = name; s_span = "engine." ^ name; s_value = None; s_hits = 0;
    s_misses = 0; s_wall = 0. }

let seeded name v =
  assert (Faultpoint.find_site name <> None);
  { s_name = name; s_span = "engine." ^ name; s_value = Some v; s_hits = 0;
    s_misses = 0; s_wall = 0. }

(* Force-once: the first access computes (a miss, timed); every later
   access is a hit. Dependencies are forced by the accessors BEFORE
   entering [force], so s_wall is exclusive per stage. *)
let force slot compute =
  match slot.s_value with
  | Some v ->
      slot.s_hits <- slot.s_hits + 1;
      v
  | None ->
      slot.s_misses <- slot.s_misses + 1;
      let t0 = Unix.gettimeofday () in
      let v = compute () in
      slot.s_wall <- slot.s_wall +. (Unix.gettimeofday () -. t0);
      slot.s_value <- Some v;
      v

type t = {
  grammar : Grammar.t;
  budget_opt : Budget.t option;
  store_opt : Store.t option;
  analysis_s : Analysis.t slot;
  lr0_s : Lr0.t slot;
  relations_s : Lalr.relations slot;
  follow_s : Lalr.follow_sets slot;
  la_s : Lalr.t slot;
  slr_s : Slr.t slot;
  nqlalr_s : Nqlalr.t slot;
  propagation_s : Propagation.t slot;
  lr1_s : Lr1.t slot;
  tables_s : Tables.t slot;
  slr_tables_s : Tables.t slot;
  nqlalr_tables_s : Tables.t slot;
  classification_s : Classify.verdict slot;
  classification_lr1_s : Classify.verdict slot;
}

let create ?budget ?analysis ?store grammar =
  (* A warm store seeds slots at creation: a seeded slot reports as
     forced with zero misses, exactly like the ?analysis seed, so the
     force-once counters still prove nothing is recomputed. All the
     bundle's artifacts were marshalled together, so their mutual
     aliasing (relations share the automaton arrays, la shares the
     relation arrays) is intact after rehydration. *)
  let bundle =
    match store with None -> None | Some st -> Store.load st grammar
  in
  let from_store name get =
    match Option.bind bundle get with
    | Some v -> seeded name v
    | None -> slot name
  in
  {
    grammar;
    budget_opt = budget;
    store_opt = store;
    analysis_s =
      (match analysis with
      | Some an -> seeded "analysis" an
      | None -> from_store "analysis" (fun b -> b.Store.b_analysis));
    lr0_s = from_store "lr0" (fun b -> b.Store.b_lr0);
    relations_s = from_store "relations" (fun b -> b.Store.b_relations);
    follow_s = from_store "follow" (fun b -> b.Store.b_follow);
    la_s = from_store "la" (fun b -> b.Store.b_la);
    slr_s = from_store "slr" (fun b -> b.Store.b_slr);
    nqlalr_s = from_store "nqlalr" (fun b -> b.Store.b_nqlalr);
    propagation_s = from_store "propagation" (fun b -> b.Store.b_propagation);
    lr1_s = from_store "lr1" (fun b -> b.Store.b_lr1);
    tables_s = from_store "tables" (fun b -> b.Store.b_tables);
    slr_tables_s = from_store "slr_tables" (fun b -> b.Store.b_slr_tables);
    nqlalr_tables_s =
      from_store "nqlalr_tables" (fun b -> b.Store.b_nqlalr_tables);
    classification_s =
      from_store "classification" (fun b -> b.Store.b_classification);
    classification_lr1_s =
      from_store "classification+lr1" (fun b -> b.Store.b_classification_lr1);
  }

(* Each slot miss runs inside a span named after the slot; the fuel a
   budgeted stage consumed is recorded as a gauge on the way out. Both
   probes cost one ref read when tracing is disarmed. *)
let forceb e slot compute =
  force slot (fun () ->
      Faultpoint.check slot.s_name;
      Trace.with_span slot.s_span (fun () ->
          match e.budget_opt with
          | None -> compute ()
          | Some b ->
              let fuel0 = Budget.consumed b Budget.Fuel in
              let record () =
                if Trace.enabled () then
                  Trace.gauge
                    ("budget.fuel." ^ slot.s_name)
                    (Budget.consumed b Budget.Fuel -. fuel0)
              in
              Fun.protect
                ~finally:record
                (fun () -> Budget.with_budget b ~stage:slot.s_name compute)))

let grammar e = e.grammar
let budget e = e.budget_opt
let store e = e.store_opt

(* Non-forcing: used by batch to report the peak LR(0) state count
   without perturbing the force-once hit/miss counters. *)
let peek_lr0_states e = Option.map Lr0.n_states e.lr0_s.s_value

let total_wall_of slots = List.fold_left (fun acc w -> acc +. w) 0. slots

let persist ?(force = false) e =
  match e.store_opt with
  | None -> ()
  | Some st ->
      (* Whatever is forced — including the completed prefix of a run
         the budget interrupted — is worth keeping for the next
         process. Seeded slots round-trip unchanged.

         Exception: a grammar whose whole compute took under
         [Store.small_threshold] is cheaper to recompute than to load
         (BENCH_pr4: warm-cache 'json' ran at 0.75x of recompute), so
         persisting it would only slow the next run down. [~force]
         overrides, for tests and deliberate cache warming. *)
      let wall =
        total_wall_of
          [
            e.analysis_s.s_wall; e.lr0_s.s_wall; e.relations_s.s_wall;
            e.follow_s.s_wall; e.la_s.s_wall; e.slr_s.s_wall;
            e.nqlalr_s.s_wall; e.propagation_s.s_wall; e.lr1_s.s_wall;
            e.tables_s.s_wall; e.slr_tables_s.s_wall;
            e.nqlalr_tables_s.s_wall; e.classification_s.s_wall;
            e.classification_lr1_s.s_wall;
          ]
      in
      if (not force) && wall < Store.small_threshold then
        Store.skip_small st
      else
        Store.save st
        {
          Store.b_grammar = e.grammar;
          b_analysis = e.analysis_s.s_value;
          b_lr0 = e.lr0_s.s_value;
          b_relations = e.relations_s.s_value;
          b_follow = e.follow_s.s_value;
          b_la = e.la_s.s_value;
          b_slr = e.slr_s.s_value;
          b_nqlalr = e.nqlalr_s.s_value;
          b_propagation = e.propagation_s.s_value;
          b_lr1 = e.lr1_s.s_value;
          b_tables = e.tables_s.s_value;
          b_slr_tables = e.slr_tables_s.s_value;
          b_nqlalr_tables = e.nqlalr_tables_s.s_value;
          b_classification = e.classification_s.s_value;
          b_classification_lr1 = e.classification_lr1_s.s_value;
        }

(* ------------------------------------------------------------------ *)
(* The failure boundary                                               *)
(* ------------------------------------------------------------------ *)

type failure =
  | Budget_exceeded of Budget.exceeded
  | Internal_error of { stage : string; invariant : string }

let pp_failure ppf = function
  | Budget_exceeded ex -> Budget.pp_exceeded ppf ex
  | Internal_error { stage; invariant } ->
      Format.fprintf ppf "internal error in stage '%s': %s" stage invariant

let run e f =
  match f e with
  | v -> Ok v
  | exception Budget.Exceeded ex -> Error (Budget_exceeded ex)
  | exception Budget.Internal_error { stage; invariant } ->
      Error (Internal_error { stage; invariant })
  | exception Stack_overflow ->
      Error
        (Internal_error
           { stage = "engine"; invariant = "stack overflow during analysis" })
  | exception Assert_failure (file, line, _) ->
      (* Backstop for invariants not yet converted to
         [Budget.broken_invariant]: still a typed outcome, never an
         abort. *)
      Error
        (Internal_error
           {
             stage = Budget.current_stage ();
             invariant = Printf.sprintf "assertion failed at %s:%d" file line;
           })
  | exception ((Out_of_memory | Sys.Break) as e) ->
      (* Asynchronous by nature: turning OOM or ctrl-C into an analysis
         verdict would lie about the grammar. *)
      raise e
  | exception e ->
      Error
        (Internal_error
           {
             stage = Budget.current_stage ();
             invariant = "unexpected exception: " ^ Printexc.to_string e;
           })
[@@lalr.allow
  D004
    "the crash-free failure boundary: any exception escaping a stage \
     must become a typed Internal_error (exit 4), never an abort; \
     Budget exceptions are matched first above and asynchronous \
     Out_of_memory/Break are re-raised, so nothing typed is swallowed"]

let analysis e = forceb e e.analysis_s (fun () -> Analysis.compute e.grammar)

let lr0 e =
  forceb e e.lr0_s (fun () ->
      let a = Lr0.build e.grammar in
      if Trace.enabled () then begin
        let states, kernel_items, transitions = Lr0.size_report a in
        Trace.gauge_int "lr0.states" states;
        Trace.gauge_int "lr0.kernel_items" kernel_items;
        Trace.gauge_int "lr0.transitions" transitions;
        Trace.gauge_int "lr0.nt_transitions" (Lr0.n_nt_transitions a)
      end;
      a)

let relations e =
  let an = analysis e in
  let a = lr0 e in
  forceb e e.relations_s (fun () -> Lalr.relations ~analysis:an a)

let follow e =
  let r = relations e in
  forceb e e.follow_s (fun () -> Lalr.solve_follow r)

let lalr e =
  let r = relations e in
  let f = follow e in
  forceb e e.la_s (fun () -> Lalr.of_stages r f)

let slr e =
  let a = lr0 e in
  forceb e e.slr_s (fun () -> Slr.compute a)

let nqlalr e =
  let a = lr0 e in
  forceb e e.nqlalr_s (fun () -> Nqlalr.compute a)

let propagation e =
  let a = lr0 e in
  forceb e e.propagation_s (fun () -> Propagation.compute a)

let lr1 e = forceb e e.lr1_s (fun () -> Lr1.build e.grammar)

let tables e =
  let t = lalr e in
  let a = lr0 e in
  forceb e e.tables_s (fun () -> Tables.build ~lookahead:(Lalr.lookahead t) a)

let slr_tables e =
  let s = slr e in
  let a = lr0 e in
  forceb e e.slr_tables_s (fun () -> Tables.build ~lookahead:(Slr.lookahead s) a)

let nqlalr_tables e =
  let n = nqlalr e in
  let a = lr0 e in
  forceb e e.nqlalr_tables_s (fun () ->
      Tables.build ~lookahead:(Nqlalr.lookahead n) a)

type method_ = [ `Lalr | `Slr | `Nqlalr ]

let tables_for e = function
  | `Lalr -> tables e
  | `Slr -> slr_tables e
  | `Nqlalr -> nqlalr_tables e

let lr1_limit = 250

let classification ?with_lr1 e =
  let use_lr1 =
    match with_lr1 with
    | Some b -> b
    | None -> Grammar.n_productions e.grammar <= lr1_limit
  in
  let s = if use_lr1 then e.classification_lr1_s else e.classification_s in
  let lalr_v = lalr e in
  let slr_v = slr e in
  let nqlalr_v = nqlalr e in
  let lalr_tbl = tables e in
  let slr_tbl = slr_tables e in
  let nq_tbl = nqlalr_tables e in
  let lr1_v = if use_lr1 then Some (lr1 e) else None in
  let a = lr0 e in
  forceb e s (fun () ->
      Classify.assemble ~lalr:lalr_v ~slr:slr_v ~nqlalr:nqlalr_v ~lalr_tbl
        ~slr_tbl ~nq_tbl ~lr1:lr1_v a)

(* ------------------------------------------------------------------ *)
(* Observability                                                      *)
(* ------------------------------------------------------------------ *)

type stage = {
  stage : string;
  forced : bool;
  misses : int;
  hits : int;
  wall : float;
}

let stage_of (s : _ slot) =
  {
    stage = s.s_name;
    forced = s.s_value <> None;
    misses = s.s_misses;
    hits = s.s_hits;
    wall = s.s_wall;
  }

let stats e =
  [
    stage_of e.analysis_s;
    stage_of e.lr0_s;
    stage_of e.relations_s;
    stage_of e.follow_s;
    stage_of e.la_s;
    stage_of e.slr_s;
    stage_of e.nqlalr_s;
    stage_of e.propagation_s;
    stage_of e.lr1_s;
    stage_of e.tables_s;
    stage_of e.slr_tables_s;
    stage_of e.nqlalr_tables_s;
    stage_of e.classification_s;
    stage_of e.classification_lr1_s;
  ]

let find_stage e name =
  match List.find_opt (fun s -> s.stage = name) (stats e) with
  | Some s -> s
  | None -> raise Not_found

let total_wall e = List.fold_left (fun acc s -> acc +. s.wall) 0. (stats e)

let pp_stats ppf e =
  let forced = List.filter (fun s -> s.forced) (stats e) in
  Format.fprintf ppf "@[<v>engine timings for %s:@,"
    (Grammar.source e.grammar);
  Format.fprintf ppf "  %-20s %10s %6s %5s@," "stage" "wall" "miss" "hit";
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-20s %8.3f ms %6d %5d@," s.stage
        (s.wall *. 1e3) s.misses s.hits)
    forced;
  Format.fprintf ppf "  %-20s %8.3f ms@]" "total" (total_wall e *. 1e3)

(* ------------------------------------------------------------------ *)
(* Partial results                                                    *)
(* ------------------------------------------------------------------ *)

type completeness = Complete | Incomplete of failure

type 'a partial = {
  pr_value : 'a option;
  pr_completeness : completeness;
  pr_completed : string list;
}

let forced_stage_names e =
  List.filter_map
    (fun (s : stage) -> if s.forced then Some s.stage else None)
    (stats e)

let run_partial e f =
  match run e f with
  | Ok v ->
      {
        pr_value = Some v;
        pr_completeness = Complete;
        pr_completed = forced_stage_names e;
      }
  | Error failure ->
      (* The interrupted slot stayed unforced, so the completed list is
         exactly the prefix of artifacts that finished — the partial
         result the caller may still render. *)
      {
        pr_value = None;
        pr_completeness = Incomplete failure;
        pr_completed = forced_stage_names e;
      }

let pp_completeness ppf = function
  | Complete -> Format.fprintf ppf "complete"
  | Incomplete failure ->
      Format.fprintf ppf "INCOMPLETE (%a)" pp_failure failure
