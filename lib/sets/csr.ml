type t = { offsets : int array; cols : int array }

type builder = {
  n : int;
  n_cols : int;
  mutable srcs : int array;
  mutable dsts : int array;
  mutable len : int;
}

let create_builder ?(edges_hint = 16) ?n_cols n =
  if n < 0 then invalid_arg "Csr.create_builder: negative row count";
  let n_cols = match n_cols with Some c -> c | None -> n in
  if n_cols < 0 then invalid_arg "Csr.create_builder: negative column count";
  let cap = max edges_hint 1 in
  { n; n_cols; srcs = Array.make cap 0; dsts = Array.make cap 0; len = 0 }

let grow b =
  let cap = Array.length b.srcs in
  let srcs = Array.make (2 * cap) 0 in
  let dsts = Array.make (2 * cap) 0 in
  Array.blit b.srcs 0 srcs 0 b.len;
  Array.blit b.dsts 0 dsts 0 b.len;
  b.srcs <- srcs;
  b.dsts <- dsts

let add b ~src ~dst =
  if src < 0 || src >= b.n then invalid_arg "Csr.add: src out of range";
  if dst < 0 || dst >= b.n_cols then invalid_arg "Csr.add: dst out of range";
  if b.len = Array.length b.srcs then grow b;
  b.srcs.(b.len) <- src;
  b.dsts.(b.len) <- dst;
  b.len <- b.len + 1

let build ?(rev = false) b =
  let offsets = Array.make (b.n + 1) 0 in
  for i = 0 to b.len - 1 do
    offsets.(b.srcs.(i) + 1) <- offsets.(b.srcs.(i) + 1) + 1
  done;
  for x = 1 to b.n do
    offsets.(x) <- offsets.(x) + offsets.(x - 1)
  done;
  let cols = Array.make b.len 0 in
  (* [next] walks each row forward (stream order) or backward from the
     row end (reversed stream order — what a cons-accumulated list
     yields). *)
  let next =
    if rev then Array.init b.n (fun x -> offsets.(x + 1))
    else Array.init b.n (fun x -> offsets.(x))
  in
  if rev then
    for i = 0 to b.len - 1 do
      let s = b.srcs.(i) in
      next.(s) <- next.(s) - 1;
      cols.(next.(s)) <- b.dsts.(i)
    done
  else
    for i = 0 to b.len - 1 do
      let s = b.srcs.(i) in
      cols.(next.(s)) <- b.dsts.(i);
      next.(s) <- next.(s) + 1
    done;
  { offsets; cols }

let of_rows rows =
  let n = Array.length rows in
  let b =
    create_builder
      ~edges_hint:(Array.fold_left (fun acc l -> acc + List.length l) 0 rows)
      n
  in
  Array.iteri
    (fun src l -> List.iter (fun dst -> add b ~src ~dst) l)
    rows;
  build b

let n_rows t = Array.length t.offsets - 1
let n_edges t = Array.length t.cols
let degree t x = t.offsets.(x + 1) - t.offsets.(x)

let iter_row t x f =
  for i = t.offsets.(x) to t.offsets.(x + 1) - 1 do
    f t.cols.(i)
  done

let fold_row t x f init =
  let acc = ref init in
  for i = t.offsets.(x) to t.offsets.(x + 1) - 1 do
    acc := f !acc t.cols.(i)
  done;
  !acc

let row_list t x =
  let acc = ref [] in
  for i = t.offsets.(x + 1) - 1 downto t.offsets.(x) do
    acc := t.cols.(i) :: !acc
  done;
  !acc

let edges t f =
  for x = 0 to n_rows t - 1 do
    for i = t.offsets.(x) to t.offsets.(x + 1) - 1 do
      f ~src:x ~dst:t.cols.(i)
    done
  done

let offsets_words t = Array.length t.offsets
let cols_words t = Array.length t.cols
