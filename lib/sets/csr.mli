(** Compressed-sparse-row adjacency: one relation, two int arrays.

    The hot-path representation of the paper's [reads]/[includes]/
    [lookback] relations (DESIGN.md §14). A relation over rows
    [0..n-1] is stored as

    - [offsets] of length [n+1]: row [x]'s successors live at indices
      [offsets.(x) .. offsets.(x+1) - 1] of
    - [cols]: all successor indices, rows concatenated.

    Two allocations total, no per-edge boxing, sequential row scans —
    the layout the Digraph traversal streams through. The type is
    [private] so the solver (same library) indexes the arrays
    directly; everyone else uses the accessors and cannot break the
    offsets invariant. *)

type t = private { offsets : int array; cols : int array }

(** {2 Construction} *)

type builder
(** Accumulates edges as two growable parallel int arrays; {!build}
    then lays them out in counted two-pass CSR form. *)

val create_builder : ?edges_hint:int -> ?n_cols:int -> int -> builder
(** [create_builder n] starts an edge list for a relation over rows
    [0..n-1]. [edges_hint] presizes the arrays; [n_cols] bounds the
    destination universe for bipartite relations (such as [lookback]:
    reduction rows, transition columns) — it defaults to [n]. *)

val add : builder -> src:int -> dst:int -> unit
(** Appends one edge. [src] must be in [0..n-1], [dst] in
    [0..n_cols-1]. *)

val build : ?rev:bool -> builder -> t
(** Two-pass counted layout: count row degrees, prefix-sum into
    [offsets], then replay the edge stream into [cols]. Within each
    row, successors keep the stream order — or, with [~rev:true],
    exactly the reverse of it (the order a cons-accumulated list
    would have ended up in, which keeps every downstream iteration
    byte-compatible with the boxed representation it replaces). *)

val of_rows : int list array -> t
(** Each row's successor list, in the order given. *)

(** {2 Access} *)

val n_rows : t -> int
val n_edges : t -> int

val degree : t -> int -> int
(** Successor count of one row. *)

val iter_row : t -> int -> (int -> unit) -> unit
(** Successors of one row, in row order. *)

val fold_row : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val row_list : t -> int -> int list
(** The row as a fresh list (boundary conversion for the list-typed
    public accessors). *)

val edges : t -> (src:int -> dst:int -> unit) -> unit
(** All edges, row by row. *)

(** {2 Memory footprint}

    Words held by each backing array, for [lalrgen stats] and the
    [lalr.mem.*] trace gauges. *)

val offsets_words : t -> int
val cols_words : t -> int
