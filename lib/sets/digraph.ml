module type LATTICE = sig
  type t

  val union_into : into:t -> t -> unit
  val copy : t -> t
end

type stats = {
  nodes : int;
  edges_examined : int;
  unions : int;
  max_stack_depth : int;
  nontrivial_sccs : int list list;
}

module Make (L : LATTICE) = struct
  (* The paper's Traverse procedure, made iterative. N.(x) holds 0 when x
     is unvisited, the stack depth at first visit while x is active, and
     infinity once x's component is complete. *)
  let infinity = max_int

  let run ~n ~successors ~init =
    let numbering = Array.make n 0 in
    let value = Array.make n None in
    let stack = ref [] in
    let depth = ref 0 in
    let max_depth = ref 0 in
    let edges = ref 0 in
    let unions = ref 0 in
    let sccs = ref [] in
    let self_loop = Array.make n false in
    let get_value x =
      match value.(x) with Some v -> v | None -> assert false
    in
    let start x =
      incr depth;
      if !depth > !max_depth then max_depth := !depth;
      stack := x :: !stack;
      numbering.(x) <- !depth;
      value.(x) <- Some (L.copy (init x))
    in
    let finish x d =
      (* x is the root of its SCC: pop members, aliasing x's value. *)
      if numbering.(x) = d then begin
        let vx = get_value x in
        let members = ref [] in
        let continue = ref true in
        while !continue do
          match !stack with
          | [] -> assert false
          | top :: tl ->
              stack := tl;
              decr depth;
              numbering.(top) <- infinity;
              members := top :: !members;
              if top <> x then value.(top) <- Some vx;
              if top = x then continue := false
        done;
        (match !members with
        | [ v ] -> if self_loop.(v) then sccs := [ v ] :: !sccs
        | _ :: _ :: _ -> sccs := !members :: !sccs
        | [] -> assert false)
      end
    in
    let visit x0 =
      start x0;
      (* Work stack entries: node, its depth at entry, remaining succs. *)
      let work = ref [ (x0, !depth, ref (successors x0)) ] in
      while !work <> [] do
        match !work with
        | [] -> ()
        | (x, d, succs) :: rest -> (
            match !succs with
            | y :: tl ->
                succs := tl;
                incr edges;
                if y = x then self_loop.(x) <- true;
                if numbering.(y) = 0 then begin
                  start y;
                  work := (y, !depth, ref (successors y)) :: !work
                end
                else begin
                  if numbering.(y) < numbering.(x) then
                    numbering.(x) <- numbering.(y);
                  incr unions;
                  L.union_into ~into:(get_value x) (get_value y)
                end
            | [] ->
                finish x d;
                work := rest;
                (match rest with
                | (parent, _, _) :: _ ->
                    if numbering.(x) < numbering.(parent) then
                      numbering.(parent) <- numbering.(x);
                    incr unions;
                    L.union_into ~into:(get_value parent) (get_value x)
                | [] -> ()))
      done
    in
    for x = 0 to n - 1 do
      if numbering.(x) = 0 then visit x
    done;
    let result = Array.init n get_value in
    ( result,
      {
        nodes = n;
        edges_examined = !edges;
        unions = !unions;
        max_stack_depth = !max_depth;
        nontrivial_sccs = !sccs;
      } )
end

module BitsetLattice = struct
  type t = Bitset.t

  let union_into ~into v = ignore (Bitset.union_into ~into v)
  let copy = Bitset.copy
end

module ForBitset = Make (BitsetLattice)

let naive_fixpoint ~n ~successors ~init =
  let value = Array.init n (fun x -> Bitset.copy (init x)) in
  let changed = ref true in
  while !changed do
    changed := false;
    for x = 0 to n - 1 do
      List.iter
        (fun y ->
          if Bitset.union_into ~into:value.(x) value.(y) then changed := true)
        (successors x)
    done
  done;
  value
