module type LATTICE = sig
  type t

  val union_into : into:t -> t -> unit
  val copy : t -> t
end

type stats = {
  nodes : int;
  edges_examined : int;
  unions : int;
  max_stack_depth : int;
  nontrivial_sccs : int list list;
}

module Make (L : LATTICE) = struct
  (* The paper's Traverse procedure, made iterative over flat arrays.
     N.(x) holds 0 when x is unvisited, the stack depth at first visit
     while x is active, and infinity once x's component is complete.

     Everything the traversal touches per node lives in a preallocated
     int (or L.t) array: the Tarjan stack S and the DFS work stack are
     explicit int arrays, values are an unboxed L.t arena filled once
     up front (init is still called exactly once per node), and the
     successor scan is a pointer walk over the CSR [cols] array — no
     closure captures, no option cells, no list-cell allocation on the
     hot path. *)
  let infinity = max_int

  let run_csr ~(graph : Csr.t) ~init =
    let offsets = graph.Csr.offsets in
    let cols = graph.Csr.cols in
    let n = Array.length offsets - 1 in
    let numbering = Array.make n 0 in
    let value = Array.init n (fun x -> L.copy (init x)) in
    let self_loop = Array.make n false in
    (* Tarjan's stack S; its height IS the paper's depth counter. *)
    let scc_stack = Array.make (max n 1) 0 in
    let sp = ref 0 in
    (* DFS work stack: node, its depth at entry, and the cursor into
       its CSR row. A node is pushed at most once, so n slots suffice. *)
    let work_node = Array.make (max n 1) 0 in
    let work_d = Array.make (max n 1) 0 in
    let work_pos = Array.make (max n 1) 0 in
    let max_depth = ref 0 in
    let edges = ref 0 in
    let unions = ref 0 in
    let sccs = ref [] in
    let start x =
      scc_stack.(!sp) <- x;
      incr sp;
      if !sp > !max_depth then max_depth := !sp;
      numbering.(x) <- !sp
    in
    let finish x d =
      (* x is the root of its SCC: pop members, aliasing x's value. *)
      if numbering.(x) = d then begin
        let vx = value.(x) in
        let members = ref [] in
        let continue = ref true in
        while !continue do
          decr sp;
          let top = scc_stack.(!sp) in
          numbering.(top) <- infinity;
          members := top :: !members;
          if top <> x then value.(top) <- vx else continue := false
        done;
        match !members with
        | [ v ] -> if self_loop.(v) then sccs := [ v ] :: !sccs
        | _ :: _ :: _ -> sccs := !members :: !sccs
        | [] -> assert false
      end
    in
    let visit x0 =
      start x0;
      work_node.(0) <- x0;
      work_d.(0) <- !sp;
      work_pos.(0) <- offsets.(x0);
      let wsp = ref 1 in
      while !wsp > 0 do
        let t = !wsp - 1 in
        let x = work_node.(t) in
        let p = work_pos.(t) in
        if p < offsets.(x + 1) then begin
          work_pos.(t) <- p + 1;
          let y = cols.(p) in
          incr edges;
          if y = x then self_loop.(x) <- true;
          if numbering.(y) = 0 then begin
            start y;
            work_node.(!wsp) <- y;
            work_d.(!wsp) <- !sp;
            work_pos.(!wsp) <- offsets.(y);
            incr wsp
          end
          else begin
            if numbering.(y) < numbering.(x) then
              numbering.(x) <- numbering.(y);
            incr unions;
            L.union_into ~into:value.(x) value.(y)
          end
        end
        else begin
          finish x work_d.(t);
          decr wsp;
          if !wsp > 0 then begin
            let parent = work_node.(!wsp - 1) in
            if numbering.(x) < numbering.(parent) then
              numbering.(parent) <- numbering.(x);
            incr unions;
            L.union_into ~into:value.(parent) value.(x)
          end
        end
      done
    in
    for x = 0 to n - 1 do
      if numbering.(x) = 0 then visit x
    done;
    ( value,
      {
        nodes = n;
        edges_examined = !edges;
        unions = !unions;
        max_stack_depth = !max_depth;
        nontrivial_sccs = !sccs;
      } )

  let run ~n ~successors ~init =
    (* Boundary adapter: lay the successor lists out as CSR once, then
       run the flat traversal. List order is preserved, so iteration
       order — and therefore every stats field — matches what the
       list-walking implementation produced. *)
    let b = Csr.create_builder ~edges_hint:(4 * n) n in
    for x = 0 to n - 1 do
      List.iter (fun y -> Csr.add b ~src:x ~dst:y) (successors x)
    done;
    run_csr ~graph:(Csr.build b) ~init
end

module BitsetLattice = struct
  type t = Bitset.t

  let union_into ~into v = ignore (Bitset.union_into ~into v)
  let copy = Bitset.copy
end

module ForBitset = Make (BitsetLattice)

let naive_fixpoint ~n ~successors ~init =
  let value = Array.init n (fun x -> Bitset.copy (init x)) in
  let changed = ref true in
  while !changed do
    changed := false;
    for x = 0 to n - 1 do
      List.iter
        (fun y ->
          if Bitset.union_into ~into:value.(x) value.(y) then changed := true)
        (successors x)
    done
  done;
  value
