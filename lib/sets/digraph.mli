(** The DeRemer–Pennello "Digraph" algorithm (paper §4).

    Given a relation [R] on nodes [0..n-1] and an initial assignment [F'],
    computes the least solution of

    {v F(x) = F'(x) ∪ ⋃ { F(y) | x R y } v}

    in a single Tarjan-style traversal: every strongly connected component
    of [R] ends up sharing one set, and each edge is examined exactly once.
    This is what makes both [Read] (over the [reads] relation) and [Follow]
    (over [includes]) linear-time in practice.

    The functor abstracts the join-semilattice of values so the identical
    traversal computes terminal bitsets in production and list-based sets
    in the test oracle.

    The traversal itself is arena-style (DESIGN.md §14): the relation is
    a {!Csr.t}, the Tarjan stack and the DFS work stack are preallocated
    int arrays, and the per-node values live in one unboxed array filled
    up front — no closures captured per node, no [option] cells, no list
    stack. {!Make.run} keeps the list-of-successors signature as a
    boundary adapter that lays the lists out as CSR first. *)

module type LATTICE = sig
  type t

  val union_into : into:t -> t -> unit
  (** [union_into ~into v] makes [into] the join of [into] and [v],
      in place. *)

  val copy : t -> t
  (** Digraph never aliases caller-supplied initial values; it copies. *)
end

type stats = {
  nodes : int;
  edges_examined : int;
  unions : int;
      (** [union_into] operations performed — the set-union count the
          paper's complexity argument bounds by the edge count *)
  max_stack_depth : int;
      (** peak depth of the traversal stack (paper's [S]) *)
  nontrivial_sccs : int list list;
      (** SCCs of [R] containing a cycle. For the [reads] relation a
          nonempty list means the grammar is not LR(k) for any k
          (paper, Theorem 9). *)
}

module Make (L : LATTICE) : sig
  val run_csr :
    graph:Csr.t -> init:(int -> L.t) -> L.t array * stats
  (** [run_csr ~graph ~init] solves the set equations over a relation
      already in CSR form — the zero-adaptation hot path. The result
      array maps each node to its final value; nodes in one SCC share
      (alias) a single value. [init] is called exactly once per node. *)

  val run :
    n:int ->
    successors:(int -> int list) ->
    init:(int -> L.t) ->
    L.t array * stats
  (** [run ~n ~successors ~init] lays the successor lists out as CSR
      (preserving order, so stats and SCC reporting are unchanged) and
      calls {!run_csr}. [successors] is called exactly once per node. *)
end

module ForBitset : sig
  val run_csr :
    graph:Csr.t -> init:(int -> Bitset.t) -> Bitset.t array * stats

  val run :
    n:int ->
    successors:(int -> int list) ->
    init:(int -> Bitset.t) ->
    Bitset.t array * stats
end

val naive_fixpoint :
  n:int ->
  successors:(int -> int list) ->
  init:(int -> Bitset.t) ->
  Bitset.t array
(** Reference implementation: iterate the equations to a fixpoint by
    repeated passes. Used as an oracle in tests and as the "naive" arm of
    bench F3. *)
