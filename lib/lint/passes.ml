module D = Diagnostic
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables
module Counterexample = Lalr_report.Counterexample
module Bitset = Lalr_sets.Bitset

type pass = {
  name : string;
  codes : string list;
  doc : string;
  run : Context.t -> D.t list;
}

(* ------------------------------------------------------------------ *)
(* Shared renderers                                                   *)
(* ------------------------------------------------------------------ *)

let prod_str g pid =
  Format.asprintf "%a" (Grammar.pp_production g) (Grammar.production g pid)

let nt_transition_json lalr x =
  let p, a = Lr0.nt_transition (Lalr.automaton lalr) x in
  D.Obj
    [
      ("state", D.Int p);
      ("symbol", D.String (Grammar.nonterminal_name (Lalr.grammar lalr) a));
    ]

let trace_to_json lalr (tr : Lalr.trace) =
  D.Obj
    [
      ("lookback", nt_transition_json lalr tr.Lalr.t_lookback);
      ( "includes_path",
        D.List (List.map (nt_transition_json lalr) tr.Lalr.t_includes_path) );
      ( "reads_path",
        D.List (List.map (nt_transition_json lalr) tr.Lalr.t_reads_path) );
      ("dr", nt_transition_json lalr tr.Lalr.t_dr);
    ]

let trace_lines lalr tr =
  Format.asprintf "%a" (Lalr.pp_trace lalr) tr |> String.split_on_char '\n'

let cycle_str lalr members =
  members
  |> List.map (fun x -> Format.asprintf "%a" (Lalr.pp_nt_transition lalr) x)
  |> String.concat " → "

let cycle_json lalr members =
  D.List (List.map (nt_transition_json lalr) members)

(* ------------------------------------------------------------------ *)
(* L001/L002 — unproductive and unreachable nonterminals              *)
(* ------------------------------------------------------------------ *)

(* Mirrors Transform.reduce exactly, so the findings coincide with the
   symbols that reduction would remove (a property the tests assert):
   reachability is judged over productive productions only. *)
let run_reduction (ctx : Context.t) =
  let g = ctx.grammar and a = ctx.analysis in
  let nnt = Grammar.n_nonterminals g in
  let productive n = Analysis.productive a n in
  let unproductive =
    List.filter (fun n -> not (productive n)) (List.init (nnt - 1) (( + ) 1))
  in
  let l001 =
    List.map
      (fun n ->
        let name = Grammar.nonterminal_name g n in
        let extra =
          if n = g.Grammar.start then
            " — the grammar generates no terminal string"
          else ""
        in
        D.make ~code:"L001" ~severity:D.Error
          ~loc:(Grammar.nonterminal_loc g n)
          ~data:[ ("symbol", D.String name) ]
          (Printf.sprintf
             "nonterminal '%s' is unproductive (derives no terminal \
              string)%s"
             name extra))
      unproductive
  in
  if not (productive g.Grammar.start) then l001
  else begin
    let prod_ok (p : Grammar.production) =
      p.id <> 0
      && productive p.lhs
      && Array.for_all
           (function Symbol.T _ -> true | Symbol.N n -> productive n)
           p.rhs
    in
    let reachable = Array.make nnt false in
    let rec visit n =
      if not reachable.(n) then begin
        reachable.(n) <- true;
        Array.iter
          (fun pid ->
            let p = Grammar.production g pid in
            if prod_ok p then
              Array.iter
                (function Symbol.N m -> visit m | Symbol.T _ -> ())
                p.rhs)
          (Grammar.productions_of g n)
      end
    in
    visit g.Grammar.start;
    let l002 =
      List.init (nnt - 1) (( + ) 1)
      |> List.filter (fun n -> productive n && not reachable.(n))
      |> List.map (fun n ->
             let name = Grammar.nonterminal_name g n in
             D.make ~code:"L002" ~severity:D.Warning
               ~loc:(Grammar.nonterminal_loc g n)
               ~data:[ ("symbol", D.String name) ]
               (Printf.sprintf
                  "nonterminal '%s' is unreachable from the start symbol"
                  name))
    in
    l001 @ l002
  end

(* ------------------------------------------------------------------ *)
(* L003 — cyclic nonterminals                                         *)
(* ------------------------------------------------------------------ *)

let run_cycles (ctx : Context.t) =
  Transform.cyclic_nonterminals ctx.grammar
  |> List.map (fun n ->
         let name = Grammar.nonterminal_name ctx.grammar n in
         D.make ~code:"L003" ~severity:D.Error
           ~loc:(Grammar.nonterminal_loc ctx.grammar n)
           ~data:[ ("symbol", D.String name) ]
           (Printf.sprintf
              "nonterminal '%s' derives itself (%s ⇒+ %s): the grammar is \
               ambiguous and not LR(k) for any k"
              name name name))

(* ------------------------------------------------------------------ *)
(* L004/L005 — cycles in the paper's relations                        *)
(* ------------------------------------------------------------------ *)

let scc_loc lalr members =
  let g = Lalr.grammar lalr in
  match members with
  | x :: _ ->
      let _, a = Lr0.nt_transition (Lalr.automaton lalr) x in
      Grammar.nonterminal_loc g a
  | [] -> { Grammar.file = Grammar.source g; line = 0 }

let run_relations (ctx : Context.t) =
  match Lazy.force ctx.lalr with
  | None -> []
  | Some lalr ->
      let stats = Lalr.stats lalr in
      let l004 =
        List.map
          (fun members ->
            D.make ~code:"L004" ~severity:D.Error ~loc:(scc_loc lalr members)
              ~data:[ ("cycle", cycle_json lalr members) ]
              ~detail:[ "cycle: " ^ cycle_str lalr members ]
              "cycle in the 'reads' relation: the grammar is not LR(k) for \
               any k (paper, Thm 6.1)")
          stats.Lalr.reads_sccs
      in
      let l005 =
        stats.Lalr.includes_sccs
        |> List.filter (fun members ->
               List.exists
                 (fun x -> not (Bitset.is_empty (Lalr.read lalr x)))
                 members)
        |> List.map (fun members ->
               D.make ~code:"L005" ~severity:D.Warning
                 ~loc:(scc_loc lalr members)
                 ~data:[ ("cycle", cycle_json lalr members) ]
                 ~detail:[ "cycle: " ^ cycle_str lalr members ]
                 "cycle in the 'includes' relation with nonempty Read sets: \
                  the grammar is ambiguous (paper §6)")
      in
      l004 @ l005

(* ------------------------------------------------------------------ *)
(* L006/L007 — dead declarations                                      *)
(* ------------------------------------------------------------------ *)

let run_declarations (ctx : Context.t) =
  let g = ctx.grammar in
  let nterm = Grammar.n_terminals g in
  let occurs = Array.make nterm false in
  Array.iter
    (fun (p : Grammar.production) ->
      Array.iter
        (function Symbol.T t -> occurs.(t) <- true | Symbol.N _ -> ())
        p.rhs)
    g.Grammar.productions;
  let l006 =
    List.init (nterm - 1) (( + ) 1)
    |> List.filter (fun t ->
           (not occurs.(t)) && g.Grammar.terminal_prec.(t) = None)
    |> List.map (fun t ->
           let name = Grammar.terminal_name g t in
           D.make ~code:"L006" ~severity:D.Warning
             ~loc:(Grammar.terminal_loc g t)
             ~data:[ ("symbol", D.String name) ]
             (Printf.sprintf "token '%s' is declared but never used" name))
  in
  (* A precedence declaration is dead when no shift/reduce decision ever
     consults it: neither as the shift terminal of a conflict nor (by
     level) as a production's precedence in one. *)
  let has_prec = Array.exists (fun p -> p <> None) g.Grammar.terminal_prec in
  let l007 =
    if not has_prec then []
    else
      match Lazy.force ctx.tables with
      | None -> []
      | Some tbl ->
          let gr = Lr0.grammar (Tables.automaton tbl) in
          let consulted_term = Array.make nterm false in
          let max_level =
            Array.fold_left
              (fun acc -> function Some (l, _) -> max acc l | None -> acc)
              0 g.Grammar.terminal_prec
          in
          let consulted_level = Array.make (max_level + 1) false in
          List.iter
            (fun (c : Tables.conflict) ->
              match c.Tables.kind with
              | Tables.Shift_reduce { reduce; _ } -> (
                  let tprec = g.Grammar.terminal_prec.(c.Tables.terminal) in
                  let pprec = (Grammar.production gr reduce).Grammar.prec in
                  match (tprec, pprec) with
                  | Some _, Some (plevel, _) ->
                      consulted_term.(c.Tables.terminal) <- true;
                      if plevel <= max_level then
                        consulted_level.(plevel) <- true
                  | _ -> ())
              | Tables.Reduce_reduce _ -> ())
            (Tables.conflicts tbl);
          List.init (nterm - 1) (( + ) 1)
          |> List.filter_map (fun t ->
                 match g.Grammar.terminal_prec.(t) with
                 | Some (level, _)
                   when (not consulted_term.(t))
                        && not consulted_level.(level) ->
                     let name = Grammar.terminal_name g t in
                     Some
                       (D.make ~code:"L007" ~severity:D.Warning
                          ~loc:(Grammar.prec_level_loc g level)
                          ~data:[ ("symbol", D.String name) ]
                          (Printf.sprintf
                             "precedence of token '%s' is never consulted \
                              in any conflict resolution"
                             name))
                 | _ -> None)
  in
  l006 @ l007

(* ------------------------------------------------------------------ *)
(* L008 — duplicate productions                                       *)
(* ------------------------------------------------------------------ *)

let run_duplicates (ctx : Context.t) =
  let g = ctx.grammar in
  let seen = Hashtbl.create 64 in
  Array.to_list g.Grammar.productions
  |> List.filter_map (fun (p : Grammar.production) ->
         if p.id = 0 then None
         else
           let key = (p.lhs, Array.to_list p.rhs) in
           match Hashtbl.find_opt seen key with
           | None ->
               Hashtbl.replace seen key p.id;
               None
           | Some first ->
               let first_loc = Grammar.production_loc g first in
               Some
                 (D.make ~code:"L008" ~severity:D.Warning
                    ~loc:(Grammar.production_loc g p.id)
                    ~data:
                      [
                        ("production", D.String (prod_str g p.id));
                        ("first_at", D.Int first_loc.Grammar.line);
                      ]
                    (Printf.sprintf
                       "duplicate production '%s' (first defined at %s)"
                       (prod_str g p.id)
                       (Format.asprintf "%a" Grammar.pp_loc first_loc))))

(* ------------------------------------------------------------------ *)
(* L101/L102 — LALR conflicts with provenance and counterexamples     *)
(* ------------------------------------------------------------------ *)

let conflict_detail lalr tbl (c : Tables.conflict) prods =
  let example =
    Format.asprintf "sample input: %a" Counterexample.pp
      (Counterexample.conflict tbl c)
  in
  let traces =
    List.filter_map
      (fun pid ->
        Lalr.trace lalr ~state:c.Tables.state ~prod:pid
          ~terminal:c.Tables.terminal)
      prods
  in
  let detail =
    example :: List.concat_map (fun tr -> trace_lines lalr tr) traces
  in
  let data =
    [
      ("state", D.Int c.Tables.state);
      ( "terminal",
        D.String
          (Grammar.terminal_name (Lalr.grammar lalr) c.Tables.terminal) );
      ("provenance", D.List (List.map (trace_to_json lalr) traces));
    ]
  in
  (detail, data)

let run_conflicts (ctx : Context.t) =
  match (Lazy.force ctx.lalr, Lazy.force ctx.tables) with
  | Some lalr, Some tbl ->
      let gr = Lalr.grammar lalr in
      List.map
        (fun (c : Tables.conflict) ->
          let tname = Grammar.terminal_name gr c.Tables.terminal in
          match c.Tables.kind with
          | Tables.Shift_reduce { reduce; _ } ->
              let detail, data = conflict_detail lalr tbl c [ reduce ] in
              D.make ~code:"L101" ~severity:D.Warning
                ~loc:(Grammar.production_loc gr reduce)
                ~detail ~data
                (Printf.sprintf
                   "shift/reduce conflict in state %d on '%s' (shift vs \
                    reduce %s)"
                   c.Tables.state tname (prod_str gr reduce))
          | Tables.Reduce_reduce { kept; dropped } ->
              let detail, data =
                conflict_detail lalr tbl c [ kept; dropped ]
              in
              D.make ~code:"L102" ~severity:D.Warning
                ~loc:(Grammar.production_loc gr kept)
                ~detail ~data
                (Printf.sprintf
                   "reduce/reduce conflict in state %d on '%s' (%s vs %s)"
                   c.Tables.state tname (prod_str gr kept)
                   (prod_str gr dropped)))
        (Tables.unresolved_conflicts tbl)
  | _ -> []

(* ------------------------------------------------------------------ *)
(* L201 — spurious NQLALR conflicts (paper §7)                        *)
(* ------------------------------------------------------------------ *)

let run_nqlalr (ctx : Context.t) =
  match Context.engine ctx with
  | Some eng ->
      let gr = Lalr_engine.Engine.grammar eng in
      let tbl = Lalr_engine.Engine.tables eng in
      let nq_tbl = Lalr_engine.Engine.nqlalr_tables eng in
      let real = Hashtbl.create 16 in
      List.iter
        (fun (c : Tables.conflict) ->
          Hashtbl.replace real (c.Tables.state, c.Tables.terminal) ())
        (Tables.unresolved_conflicts tbl);
      Tables.unresolved_conflicts nq_tbl
      |> List.filter (fun (c : Tables.conflict) ->
             not (Hashtbl.mem real (c.Tables.state, c.Tables.terminal)))
      |> List.map (fun (c : Tables.conflict) ->
             let pid =
               match c.Tables.kind with
               | Tables.Shift_reduce { reduce; _ } -> reduce
               | Tables.Reduce_reduce { kept; _ } -> kept
             in
             D.make ~code:"L201" ~severity:D.Info
               ~loc:(Grammar.production_loc gr pid)
               ~data:
                 [
                   ("state", D.Int c.Tables.state);
                   ( "terminal",
                     D.String (Grammar.terminal_name gr c.Tables.terminal) );
                 ]
               (Printf.sprintf
                  "NQLALR (per-state follow merging) would report a \
                   spurious conflict in state %d on '%s'; the exact sets \
                   are conflict-free here (paper §7)"
                  c.Tables.state
                  (Grammar.terminal_name gr c.Tables.terminal)))
  | None -> []

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let all =
  [
    {
      name = "reduction";
      codes = [ "L001"; "L002" ];
      doc = "unproductive and unreachable nonterminals";
      run = run_reduction;
    };
    {
      name = "cycles";
      codes = [ "L003" ];
      doc = "cyclic nonterminals (A ⇒+ A)";
      run = run_cycles;
    };
    {
      name = "relations";
      codes = [ "L004"; "L005" ];
      doc = "cycles in the reads/includes relations";
      run = run_relations;
    };
    {
      name = "declarations";
      codes = [ "L006"; "L007" ];
      doc = "unused tokens and dead precedence declarations";
      run = run_declarations;
    };
    {
      name = "duplicates";
      codes = [ "L008" ];
      doc = "duplicate productions";
      run = run_duplicates;
    };
    {
      name = "conflicts";
      codes = [ "L101"; "L102" ];
      doc = "LALR(1) conflicts with provenance traces";
      run = run_conflicts;
    };
    {
      name = "nqlalr";
      codes = [ "L201" ];
      doc = "spurious conflicts under the NQLALR approximation";
      run = run_nqlalr;
    };
  ]
