module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables
module Eng = Lalr_engine.Engine

type t = {
  grammar : Grammar.t;
  analysis : Analysis.t;
  engine : Eng.t option Lazy.t;
  reduced : Grammar.t option Lazy.t;
  automaton : Lr0.t option Lazy.t;
  lalr : Lalr.t option Lazy.t;
  tables : Tables.t option Lazy.t;
}

let of_grammar ?budget grammar =
  let analysis = Analysis.compute grammar in
  let engine =
    lazy
      (if Analysis.is_reduced analysis then
         (* Physical equality with [grammar] preserved: the engine
            analyses the grammar as given, sharing [analysis]. *)
         Some (Eng.create ?budget ~analysis grammar)
       else
         match Transform.reduce grammar with
         | g -> Some (Eng.create ?budget g)
         | exception Invalid_argument _ -> None)
  in
  let reduced = lazy (Option.map Eng.grammar (Lazy.force engine)) in
  let automaton = lazy (Option.map Eng.lr0 (Lazy.force engine)) in
  let lalr = lazy (Option.map Eng.lalr (Lazy.force engine)) in
  let tables = lazy (Option.map Eng.tables (Lazy.force engine)) in
  { grammar; analysis; engine; reduced; automaton; lalr; tables }

let engine ctx = Lazy.force ctx.engine
