(** Shared analysis state for lint passes.

    One context is built per linted grammar. The expensive artefacts
    all live in one {!Lalr_engine.Engine} over the {e reduced} grammar,
    so every pass — and the {!Selfcheck} oracle — queries the same
    memoized pipeline: the LR(0) automaton and the DeRemer–Pennello
    relations are constructed at most once per lint run (the engine's
    miss counters prove it; the test suite asserts it). The [lazy]
    wrappers keep a pass selection that needs no automaton — pure
    grammar hygiene — at zero cost.

    The engine (and everything downstream) is [None] when the grammar
    generates no terminal string at all (unproductive start symbol):
    those passes simply do not run, and the L001 finding explains
    why. *)

type t = {
  grammar : Grammar.t;  (** the grammar as given, with locations *)
  analysis : Analysis.t;  (** of [grammar] *)
  engine : Lalr_engine.Engine.t option Lazy.t;
      (** the memoized pipeline over [reduced]; shares [analysis] when
          the grammar was already reduced *)
  reduced : Grammar.t option Lazy.t;
      (** [grammar] itself when already reduced (physical equality
          preserved, so location arrays are shared); otherwise
          {!Transform.reduce} of it; [None] if the start symbol is
          unproductive *)
  automaton : Lalr_automaton.Lr0.t option Lazy.t;
      (** the engine's [lr0] slot *)
  lalr : Lalr_core.Lalr.t option Lazy.t;  (** the engine's [la] slot *)
  tables : Lalr_tables.Tables.t option Lazy.t;
      (** the engine's [tables] slot (exact DeRemer–Pennello sets) *)
}

val of_grammar : ?budget:Lalr_guard.Budget.t -> Grammar.t -> t
(** [?budget] is passed to the engine (see
    {!Lalr_engine.Engine.create}), so a bounded lint run fails with the
    same structured {!Lalr_guard.Budget.Exceeded} outcome as every
    other consumer. *)

val engine : t -> Lalr_engine.Engine.t option
(** Forces the engine's existence (not its slots). [None] iff the
    start symbol is unproductive. Front ends use this for [--timings]
    after a lint run. *)
