module D = Diagnostic

type config = {
  select : string list;
  ignored : string list;
  min_severity : D.severity;
  self_check : bool;
}

let default_config =
  { select = []; ignored = []; min_severity = D.Info; self_check = false }

let passes ~self_check =
  Passes.all @ if self_check then [ Selfcheck.pass ] else []

let known_codes =
  List.concat_map (fun (p : Passes.pass) -> p.Passes.codes)
    (passes ~self_check:true)
  |> List.sort_uniq String.compare

let keep config (d : D.t) =
  (config.select = [] || List.mem d.D.code config.select)
  && (not (List.mem d.D.code config.ignored))
  && D.severity_rank d.D.severity >= D.severity_rank config.min_severity

let run_ctx ?(config = default_config) ctx =
  passes ~self_check:config.self_check
  |> List.concat_map (fun (p : Passes.pass) -> p.Passes.run ctx)
  |> List.filter (keep config)
  |> List.sort D.compare

let run ?budget ?config g = run_ctx ?config (Context.of_grammar ?budget g)

let has_errors = List.exists (fun (d : D.t) -> d.D.severity = D.Error)

let pp_report ppf diags =
  let count sev =
    List.length (List.filter (fun (d : D.t) -> d.D.severity = sev) diags)
  in
  Format.fprintf ppf "@[<v>";
  List.iter (fun d -> Format.fprintf ppf "%a@," D.pp d) diags;
  (match diags with
  | [] -> Format.fprintf ppf "no findings@,"
  | _ ->
      let plural n = if n = 1 then "" else "s" in
      let e = count D.Error and w = count D.Warning and i = count D.Info in
      let parts =
        List.filter_map
          (fun (n, what) ->
            if n = 0 then None
            else Some (Printf.sprintf "%d %s%s" n what (plural n)))
          [ (e, "error"); (w, "warning"); (i, "info finding") ]
      in
      Format.fprintf ppf "%s@," (String.concat ", " parts));
  Format.fprintf ppf "@]"
