(** The lint engine: runs the pass registry over a grammar and filters
    the findings.

    This is what [lalrgen lint] and the CI gate call. Severity
    filtering, code selection and the exit-code contract live here so
    every front end behaves identically:

    - exit 0 — no error-severity finding (after filtering);
    - nonzero — at least one error-severity finding survives.

    ({!has_errors} computes the condition; the CLI maps it to its exit
    code.) *)

type config = {
  select : string list;
      (** report only these codes; empty selects everything *)
  ignored : string list;  (** codes to drop, applied after [select] *)
  min_severity : Diagnostic.severity;
      (** report threshold; [Info] reports everything *)
  self_check : bool;  (** also run the {!Selfcheck} oracle pass *)
}

val default_config : config
(** Everything selected, nothing ignored, [Info] threshold, no
    self-check. *)

val passes : self_check:bool -> Passes.pass list
(** The execution list: {!Passes.all}, plus the oracle when asked. *)

val known_codes : string list
(** Every code any registered pass can emit (self-check included),
    ascending — the vocabulary for [--select]/[--ignore] validation. *)

val run :
  ?budget:Lalr_guard.Budget.t -> ?config:config -> Grammar.t ->
  Diagnostic.t list
(** Lints one grammar: builds a {!Context.t} (threading [?budget] to
    its engine), runs the passes, filters by the config, sorts by
    location. *)

val run_ctx : ?config:config -> Context.t -> Diagnostic.t list
(** Same over a caller-built context — the front end keeps the context
    (and so the underlying {!Lalr_engine.Engine}) to report [--timings]
    or reuse artifacts after the lint run. *)

val has_errors : Diagnostic.t list -> bool

val pp_report : Format.formatter -> Diagnostic.t list -> unit
(** The text rendering: one diagnostic per block, then a summary line
    ("2 errors, 1 warning" or "no findings"). *)
