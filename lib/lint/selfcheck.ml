module D = Diagnostic
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Propagation = Lalr_baselines.Propagation
module Lr1 = Lalr_baselines.Lr1
module Bitset = Lalr_sets.Bitset
module Eng = Lalr_engine.Engine

let lr1_limit = Eng.lr1_limit

let set_str g s =
  Format.asprintf "%a"
    (Bitset.pp ~pp_elt:(fun ppf t ->
         Format.pp_print_string ppf (Grammar.terminal_name g t)))
    s

let violation g lalr ~invariant r ~got ~want =
  let q, pid = Lalr.reduction lalr r in
  D.make ~code:"L901" ~severity:D.Error
    ~loc:(Grammar.production_loc g pid)
    ~data:
      [
        ("invariant", D.String invariant);
        ("state", D.Int q);
        ("production", D.Int pid);
      ]
    (Printf.sprintf
       "self-check failed [%s] for LA(%d, %s): computed %s, oracle %s"
       invariant q
       (Format.asprintf "%a" (Grammar.pp_production g)
          (Grammar.production g pid))
       (set_str g got) (set_str g want))

(* The oracle runs against the SAME engine as the lint passes: the
   LR(0) automaton and the relations it audits are the memoized slots,
   not fresh constructions (the engine's miss counters stay at one per
   stage — asserted in the test suite). Only the oracle-specific
   artifacts (propagation, canonical LR(1)) are forced here, and they
   too land in engine slots, shared with any later consumer. *)
let run (ctx : Context.t) =
  match Context.engine ctx with
  | Some eng ->
      let a = Eng.lr0 eng in
      let lalr = Eng.lalr eng in
      let g = Lr0.grammar a in
      let analysis = Lalr.analysis lalr in
      let n_red = Lalr.n_reductions lalr in
      let bad = ref [] in
      (* 1. SLR bound: LA ⊆ FOLLOW(lhs). *)
      for r = 0 to n_red - 1 do
        let _, pid = Lalr.reduction lalr r in
        let lhs = (Grammar.production g pid).Grammar.lhs in
        let follow = Analysis.follow analysis lhs in
        let la = Lalr.la lalr r in
        if not (Bitset.subset la follow) then
          bad :=
            violation g lalr ~invariant:"LA ⊆ SLR FOLLOW" r ~got:la
              ~want:follow
            :: !bad
      done;
      (* 2. Agreement with yacc-style propagation. *)
      let prop = Eng.propagation eng in
      for r = 0 to n_red - 1 do
        let q, pid = Lalr.reduction lalr r in
        let oracle = Propagation.lookahead prop ~state:q ~prod:pid in
        let la = Lalr.la lalr r in
        if not (Bitset.equal la oracle) then
          bad :=
            violation g lalr ~invariant:"DP = propagation" r ~got:la
              ~want:oracle
            :: !bad
      done;
      (* 3. Agreement with canonical LR(1) merged by core. *)
      let lr1_ran =
        if Grammar.n_productions g > lr1_limit then false
        else begin
          let merged = Lr1.merged_lookaheads (Eng.lr1 eng) a in
          for r = 0 to n_red - 1 do
            let q, pid = Lalr.reduction lalr r in
            let oracle = Hashtbl.find merged (q, pid) in
            let la = Lalr.la lalr r in
            if not (Bitset.equal la oracle) then
              bad :=
                violation g lalr ~invariant:"DP = LR(1) merge" r ~got:la
                  ~want:oracle
                :: !bad
          done;
          true
        end
      in
      if !bad <> [] then List.rev !bad
      else
        [
          D.make ~code:"L900" ~severity:D.Info
            ~loc:{ Grammar.file = Grammar.source g; line = 0 }
            ~data:
              [
                ("reductions", D.Int n_red);
                ("lr1_checked", D.Bool lr1_ran);
              ]
            (Printf.sprintf
               "self-check passed: LA ⊆ SLR FOLLOW and DP = propagation%s \
                over %d reductions"
               (if lr1_ran then " = LR(1) merge" else "")
               n_red);
        ]
  | None -> []

let pass =
  {
    Passes.name = "selfcheck";
    codes = [ "L900"; "L901" ];
    doc = "oracle: audit the core look-ahead computation on this grammar";
    run;
  }
