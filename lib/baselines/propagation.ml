module Bitset = Lalr_sets.Bitset
module Item = Lalr_automaton.Item
module Lr0 = Lalr_automaton.Lr0
module Budget = Lalr_guard.Budget

type stats = {
  n_kernel_items : int;
  spontaneous : int;
  propagate_edges : int;
  passes : int;
}

type t = {
  automaton : Lr0.t;
  analysis : Analysis.t;
  (* Dense numbering of kernel items: state s's kernel occupies
     [offset.(s) .. offset.(s) + |kernel| - 1] in kernel order. *)
  offset : int array;
  lookaheads : Bitset.t array;
  stats : stats;
}

let automaton t = t.automaton

let kernel_slot t ~state ~item =
  let kernel = (Lr0.state t.automaton state).kernel in
  let rec find i =
    if i = Array.length kernel then raise Not_found
    else if kernel.(i) = item then t.offset.(state) + i
    else find (i + 1)
  in
  find 0

let kernel_lookahead t ~state ~item = t.lookaheads.(kernel_slot t ~state ~item)

(* LR(1) closure of a single kernel item with look-ahead #, where # is
   represented by terminal id [n_term] in a universe of n_term + 1.
   Returns the closure as a list of (lr0_item, la) pairs. *)
let closure_with_hash g tbl analysis n_term item =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let queue = Queue.create () in
  let hash_la = n_term in
  let add lr0 la =
    let key = (lr0 * (n_term + 1)) + la in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      acc := (lr0, la) :: !acc;
      Queue.add (lr0, la) queue
    end
  in
  add item hash_la;
  while not (Queue.is_empty queue) do
    let lr0, la = Queue.pop queue in
    match Item.next_symbol tbl lr0 with
    | Some (Symbol.N b) ->
        let prod = Grammar.production g (Item.prod tbl lr0) in
        let dot = Item.dot tbl lr0 in
        let first, nullable =
          Analysis.first_sentence analysis prod.rhs ~from:(dot + 1)
        in
        Array.iter
          (fun pid ->
            let init = Item.initial tbl ~prod:pid in
            Bitset.iter (fun b_la -> add init b_la) first;
            if nullable then add init la)
          (Grammar.productions_of g b)
    | Some (Symbol.T _) | None -> ()
  done;
  !acc

let compute (a : Lr0.t) =
  Budget.with_stage "propagation" @@ fun () ->
  let g = Lr0.grammar a in
  let tbl = Lr0.items a in
  let analysis = Analysis.compute g in
  let n_term = Grammar.n_terminals g in
  let n_states = Lr0.n_states a in
  (* Kernel slot numbering. *)
  let offset = Array.make n_states 0 in
  let total = ref 0 in
  for s = 0 to n_states - 1 do
    offset.(s) <- !total;
    total := !total + Array.length (Lr0.state a s).kernel
  done;
  let lookaheads = Array.init !total (fun _ -> Bitset.create n_term) in
  let slot state item =
    let kernel = (Lr0.state a state).kernel in
    let rec find i =
      if i = Array.length kernel then
        Budget.broken_invariant ~stage:"propagation"
          (Printf.sprintf
             "advanced item %d missing from the kernel of goto target %d"
             item state)
      else if kernel.(i) = item then offset.(state) + i
      else find (i + 1)
    in
    find 0
  in
  (* Pass 1: spontaneous look-aheads and propagation edges. *)
  let edges = Array.make !total [] in
  let spontaneous = ref 0 in
  let propagate_edges = ref 0 in
  for p = 0 to n_states - 1 do
    Budget.burn ();
    Array.iter
      (fun kitem ->
        Budget.burn ();
        let src = slot p kitem in
        List.iter
          (fun (lr0, la) ->
            match Item.next_symbol tbl lr0 with
            | None -> ()
            | Some sym ->
                let q = Lr0.goto_exn a p sym in
                let dst = slot q (Item.advance tbl lr0) in
                if la = n_term then begin
                  (* # : propagation from src to dst. *)
                  edges.(src) <- dst :: edges.(src);
                  incr propagate_edges
                end
                else begin
                  Bitset.add lookaheads.(dst) la;
                  incr spontaneous
                end)
          (closure_with_hash g tbl analysis n_term kitem))
      (Lr0.state a p).kernel
  done;
  (* Pass 2: round-based propagation to fixpoint, as in yacc. *)
  let passes = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr passes;
    for src = 0 to !total - 1 do
      Budget.burn ();
      List.iter
        (fun dst ->
          if Bitset.union_into ~into:lookaheads.(dst) lookaheads.(src) then
            changed := true)
        edges.(src)
    done
  done;
  {
    automaton = a;
    analysis;
    offset;
    lookaheads;
    stats =
      {
        n_kernel_items = !total;
        spontaneous = !spontaneous;
        propagate_edges = !propagate_edges;
        passes = !passes;
      };
  }

(* In-state LALR closure: extend kernel look-aheads to all closure items
   of [state]; needed for reductions by ε-productions whose final item is
   not in the kernel. *)
let state_closure_lookaheads t state =
  let a = t.automaton in
  let g = Lr0.grammar a in
  let tbl = Lr0.items a in
  let n_term = Grammar.n_terminals g in
  let st = Lr0.state a state in
  let las = Hashtbl.create 16 in
  Array.iter
    (fun item -> Hashtbl.replace las item (Bitset.create n_term))
    st.items;
  Array.iteri
    (fun i item ->
      ignore
        (Bitset.union_into ~into:(Hashtbl.find las item)
           t.lookaheads.(t.offset.(state) + i)))
    st.kernel;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun item ->
        match Item.next_symbol tbl item with
        | Some (Symbol.N b) ->
            let prod = Grammar.production g (Item.prod tbl item) in
            let dot = Item.dot tbl item in
            let first, nullable =
              Analysis.first_sentence t.analysis prod.rhs ~from:(dot + 1)
            in
            if nullable then
              ignore
                (Bitset.union_into ~into:first (Hashtbl.find las item));
            Array.iter
              (fun pid ->
                let init = Item.initial tbl ~prod:pid in
                if Bitset.union_into ~into:(Hashtbl.find las init) first
                then changed := true)
              (Grammar.productions_of g b)
        | Some (Symbol.T _) | None -> ())
      st.items
  done;
  las

let lookahead t ~state ~prod =
  let a = t.automaton in
  if not (List.mem prod (Lr0.reductions a state)) then raise Not_found;
  let tbl = Lr0.items a in
  let final = Item.encode tbl ~prod ~dot:(Grammar.rhs_length (Lr0.grammar a) prod) in
  match kernel_slot t ~state ~item:final with
  | s -> t.lookaheads.(s)
  | exception Not_found ->
      (* ε-production: final item lives in the closure only. *)
      Hashtbl.find (state_closure_lookaheads t state) final

let stats t = t.stats
