module Bitset = Lalr_sets.Bitset
module Lr0 = Lalr_automaton.Lr0

(* ------------------------------------------------------------------ *)
(* The list-walking Digraph traversal the arena solver replaced        *)
(* ------------------------------------------------------------------ *)

let infinity = max_int

let solve_digraph ~n ~successors ~init =
  let numbering = Array.make n 0 in
  let value = Array.make n None in
  let stack = ref [] in
  let depth = ref 0 in
  let self_loop = Array.make n false in
  let get_value x =
    match value.(x) with Some v -> v | None -> assert false
  in
  let start x =
    incr depth;
    stack := x :: !stack;
    numbering.(x) <- !depth;
    value.(x) <- Some (Bitset.copy (init x))
  in
  let finish x d =
    if numbering.(x) = d then begin
      let vx = get_value x in
      let continue = ref true in
      while !continue do
        match !stack with
        | [] -> assert false
        | top :: tl ->
            stack := tl;
            decr depth;
            numbering.(top) <- infinity;
            if top <> x then value.(top) <- Some vx;
            if top = x then continue := false
      done
    end
  in
  let visit x0 =
    start x0;
    let work = ref [ (x0, !depth, ref (successors x0)) ] in
    while !work <> [] do
      match !work with
      | [] -> ()
      | (x, d, succs) :: rest -> (
          match !succs with
          | y :: tl ->
              succs := tl;
              if y = x then self_loop.(x) <- true;
              if numbering.(y) = 0 then begin
                start y;
                work := (y, !depth, ref (successors y)) :: !work
              end
              else begin
                if numbering.(y) < numbering.(x) then
                  numbering.(x) <- numbering.(y);
                ignore (Bitset.union_into ~into:(get_value x) (get_value y))
              end
          | [] ->
              finish x d;
              work := rest;
              (match rest with
              | (parent, _, _) :: _ ->
                  if numbering.(x) < numbering.(parent) then
                    numbering.(parent) <- numbering.(x);
                  ignore
                    (Bitset.union_into ~into:(get_value parent) (get_value x))
              | [] -> ()))
    done
  in
  for x = 0 to n - 1 do
    if numbering.(x) = 0 then visit x
  done;
  Array.init n get_value

(* ------------------------------------------------------------------ *)
(* Stage 1 — boxed relation construction                               *)
(* ------------------------------------------------------------------ *)

type relations = {
  r_automaton : Lr0.t;
  r_dr : Bitset.t array;
  r_reads : int list array;
  r_includes : int list array;
  r_lookback : int list array;
  r_reduction_pairs : (int * int) array;
  r_reduction_index : (int * int, int) Hashtbl.t;
}

let relations ?analysis (a : Lr0.t) =
  let g = Lr0.grammar a in
  let analysis =
    match analysis with Some an -> an | None -> Analysis.compute g
  in
  let n_term = Grammar.n_terminals g in
  let nx = Lr0.n_nt_transitions a in
  let dr = Array.init nx (fun _ -> Bitset.create n_term) in
  let reads = Array.make nx [] in
  for x = 0 to nx - 1 do
    let r = Lr0.nt_transition_target a x in
    List.iter
      (fun (sym, _) ->
        match sym with
        | Symbol.T t -> Bitset.add dr.(x) t
        | Symbol.N c ->
            if Analysis.nullable analysis c then
              reads.(x) <- Lr0.find_nt_transition a r c :: reads.(x))
      (* The frozen access pattern: the dense goto-row sweep the packed
         transition rows replaced. *)
      (Lr0.transitions_dense a r)
  done;
  let includes_rev = Array.make nx [] in
  for x' = 0 to nx - 1 do
    let p', b = Lr0.nt_transition a x' in
    Array.iter
      (fun pid ->
        let prod = Grammar.production g pid in
        let len = Array.length prod.rhs in
        let state = ref p' in
        for i = 0 to len - 1 do
          (match prod.rhs.(i) with
          | Symbol.N c
            when Analysis.nullable_sentence analysis prod.rhs ~from:(i + 1)
                   ~upto:len ->
              let x = Lr0.find_nt_transition a !state c in
              includes_rev.(x) <- x' :: includes_rev.(x)
          | Symbol.N _ | Symbol.T _ -> ());
          state := Lr0.goto_exn a !state prod.rhs.(i)
        done)
      (Grammar.productions_of g b)
  done;
  let includes = Array.map (fun l -> List.rev l) includes_rev in
  let reduction_pairs = ref [] in
  let reduction_index = Hashtbl.create 256 in
  let n_red = ref 0 in
  for q = 0 to Lr0.n_states a - 1 do
    List.iter
      (fun pid ->
        Hashtbl.replace reduction_index (q, pid) !n_red;
        reduction_pairs := (q, pid) :: !reduction_pairs;
        incr n_red)
      (Lr0.reductions a q)
  done;
  let reduction_pairs = Array.of_list (List.rev !reduction_pairs) in
  let lookback = Array.make !n_red [] in
  for x = 0 to nx - 1 do
    let p, aa = Lr0.nt_transition a x in
    Array.iter
      (fun pid ->
        if pid <> 0 then begin
          let prod = Grammar.production g pid in
          let q = Lr0.traverse a p prod.rhs ~from:0 in
          match Hashtbl.find_opt reduction_index (q, pid) with
          | Some r -> lookback.(r) <- x :: lookback.(r)
          | None -> assert false
        end)
      (Grammar.productions_of g aa)
  done;
  {
    r_automaton = a;
    r_dr = dr;
    r_reads = reads;
    r_includes = includes;
    r_lookback = lookback;
    r_reduction_pairs = reduction_pairs;
    r_reduction_index = reduction_index;
  }

(* ------------------------------------------------------------------ *)
(* Stage 2 — the two fixpoints                                         *)
(* ------------------------------------------------------------------ *)

type follow_sets = { f_read : Bitset.t array; f_follow : Bitset.t array }

let solve_follow r =
  let nx = Array.length r.r_dr in
  let read =
    solve_digraph ~n:nx
      ~successors:(fun x -> r.r_reads.(x))
      ~init:(fun x -> r.r_dr.(x))
  in
  let follow =
    solve_digraph ~n:nx
      ~successors:(fun x -> r.r_includes.(x))
      ~init:(fun x -> read.(x))
  in
  { f_read = read; f_follow = follow }

(* ------------------------------------------------------------------ *)
(* Stage 3 — the look-ahead union                                      *)
(* ------------------------------------------------------------------ *)

type t = {
  relations : relations;
  follow_sets : follow_sets;
  la : Bitset.t array;
}

let of_stages r f =
  let g = Lr0.grammar r.r_automaton in
  let n_term = Grammar.n_terminals g in
  let la =
    Array.init
      (Array.length r.r_reduction_pairs)
      (fun i ->
        let acc = Bitset.create n_term in
        List.iter
          (fun x -> ignore (Bitset.union_into ~into:acc f.f_follow.(x)))
          r.r_lookback.(i);
        acc)
  in
  { relations = r; follow_sets = f; la }

let compute a =
  let r = relations a in
  of_stages r (solve_follow r)

let automaton t = t.relations.r_automaton
let n_nt_transitions t = Array.length t.relations.r_dr
let dr t x = t.relations.r_dr.(x)
let read t x = t.follow_sets.f_read.(x)
let follow t x = t.follow_sets.f_follow.(x)
let reads t x = t.relations.r_reads.(x)
let includes t x = t.relations.r_includes.(x)
let n_reductions t = Array.length t.relations.r_reduction_pairs
let reduction t i = t.relations.r_reduction_pairs.(i)
let lookback t i = t.relations.r_lookback.(i)
let la t i = t.la.(i)
