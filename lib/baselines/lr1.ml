module Bitset = Lalr_sets.Bitset
module Vec = Lalr_sets.Vec
module Item = Lalr_automaton.Item
module Lr0 = Lalr_automaton.Lr0
module Budget = Lalr_guard.Budget

(* An LR(1) item is an LR(0) item paired with one look-ahead terminal,
   packed as [lr0_item * n_terminals + la]. States are identified by
   their sorted kernel. *)

type state = {
  kernel : int array;
  mutable closure : int array;  (* filled during construction *)
}

type t = {
  grammar : Grammar.t;
  items : Item.table;
  n_term : int;
  states : state array;
  transitions : (Symbol.t * int) list array;
}

let grammar t = t.grammar
let n_states t = Array.length t.states
let items t = t.items

let pack ~n_term lr0 la = (lr0 * n_term) + la
let lr0_of ~n_term packed = packed / n_term
let la_of ~n_term packed = packed mod n_term

(* LR(1) closure: for [A → α . B β, a], add [B → . γ, b] for every
   production B → γ and b ∈ FIRST(β a). *)
let closure_of g tbl analysis n_term kernel =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let queue = Queue.create () in
  let add item =
    if not (Hashtbl.mem seen item) then begin
      Hashtbl.replace seen item ();
      acc := item :: !acc;
      Queue.add item queue
    end
  in
  Array.iter add kernel;
  while not (Queue.is_empty queue) do
    let packed = Queue.pop queue in
    let lr0 = lr0_of ~n_term packed and la = la_of ~n_term packed in
    match Item.next_symbol tbl lr0 with
    | Some (Symbol.N b) ->
        let prod = Grammar.production g (Item.prod tbl lr0) in
        let dot = Item.dot tbl lr0 in
        let first, nullable =
          Analysis.first_sentence analysis prod.rhs ~from:(dot + 1)
        in
        if nullable then Bitset.add first la;
        Array.iter
          (fun pid ->
            let init = Item.initial tbl ~prod:pid in
            Bitset.iter (fun b_la -> add (pack ~n_term init b_la)) first)
          (Grammar.productions_of g b)
    | Some (Symbol.T _) | None -> ()
  done;
  let arr = Array.of_list !acc in
  Array.sort Int.compare arr;
  arr

module Kernel_tbl = Hashtbl.Make (struct
  type t = int array

  let equal = ( = )
  let hash (k : int array) = Hashtbl.hash k
end)

let build g =
  Budget.with_stage "lr1" @@ fun () ->
  let tbl = Item.make g in
  let analysis = Analysis.compute g in
  let n_term = Grammar.n_terminals g in
  let states : state Vec.t = Vec.create () in
  let trans : (Symbol.t * int) list Vec.t = Vec.create () in
  let index = Kernel_tbl.create 1024 in
  let partial () =
    Printf.sprintf "%d canonical LR(1) states constructed" (Vec.length states)
  in
  let intern kernel =
    match Kernel_tbl.find_opt index kernel with
    | Some id -> id
    | None ->
        Budget.count_state ~partial ();
        let id = Vec.push states { kernel; closure = [||] } in
        ignore (Vec.push trans []);
        Kernel_tbl.replace index kernel id;
        id
  in
  (* Initial kernel: [S' → . start $, $]. The la of this item is never
     consulted ($ cannot follow the augmented start); $ is conventional. *)
  ignore (intern [| pack ~n_term (Item.initial tbl ~prod:0) 0 |]);
  let cursor = ref 0 in
  while !cursor < Vec.length states do
    Budget.burn ();
    let s = Vec.get states !cursor in
    let closure = closure_of g tbl analysis n_term s.kernel in
    Budget.count_items ~partial (Array.length closure);
    s.closure <- closure;
    let groups : (Symbol.t, int list) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    Array.iter
      (fun packed ->
        let lr0 = lr0_of ~n_term packed in
        match Item.next_symbol tbl lr0 with
        | None -> ()
        | Some sym ->
            let advanced =
              pack ~n_term (Item.advance tbl lr0) (la_of ~n_term packed)
            in
            (match Hashtbl.find_opt groups sym with
            | None ->
                order := sym :: !order;
                Hashtbl.replace groups sym [ advanced ]
            | Some l -> Hashtbl.replace groups sym (advanced :: l)))
      closure;
    let edges =
      List.rev_map
        (fun sym ->
          let kernel = Array.of_list (Hashtbl.find groups sym) in
          Array.sort Int.compare kernel;
          (sym, intern kernel))
        !order
      |> List.sort (fun (a, _) (b, _) -> Symbol.compare a b)
    in
    Vec.set trans !cursor edges;
    incr cursor
  done;
  {
    grammar = g;
    items = tbl;
    n_term;
    states = Vec.to_array states;
    transitions = Vec.to_array trans;
  }

let state_core t i =
  let cores =
    Array.to_list t.states.(i).kernel
    |> List.map (fun packed -> lr0_of ~n_term:t.n_term packed)
    |> List.sort_uniq Int.compare
  in
  Array.of_list cores

let goto t s sym = List.assoc_opt sym t.transitions.(s)

let reduce_actions t s =
  let by_prod = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun packed ->
      let lr0 = lr0_of ~n_term:t.n_term packed in
      if Item.is_final t.items lr0 then begin
        let pid = Item.prod t.items lr0 in
        if pid <> 0 then begin
          let set =
            match Hashtbl.find_opt by_prod pid with
            | Some set -> set
            | None ->
                let set = Bitset.create t.n_term in
                Hashtbl.replace by_prod pid set;
                order := pid :: !order;
                set
          in
          Bitset.add set (la_of ~n_term:t.n_term packed)
        end
      end)
    t.states.(s).closure;
  List.sort Int.compare !order
  |> List.map (fun pid -> (pid, Hashtbl.find by_prod pid))

let is_lr1 t =
  let ok = ref true in
  for s = 0 to Array.length t.states - 1 do
    let reds = reduce_actions t s in
    if reds <> [] then begin
      let seen = Bitset.create t.n_term in
      List.iter
        (fun (sym, _) ->
          match sym with
          | Symbol.T tt -> Bitset.add seen tt
          | Symbol.N _ -> ())
        t.transitions.(s);
      List.iter
        (fun (_, set) ->
          if not (Bitset.disjoint set seen) then ok := false;
          ignore (Bitset.union_into ~into:seen set))
        reds
    end
  done;
  !ok

let merged_lookaheads t (lr0 : Lr0.t) =
  if not (Grammar.equal_structure t.grammar (Lr0.grammar lr0)) then
    invalid_arg "Lr1.merged_lookaheads: different grammars";
  (* Identify each LR(1) state's LR(0) core with an LR(0) state id via
     kernels. The Item.table numbering coincides because both are built
     from the same grammar deterministically. *)
  let core_index = Kernel_tbl.create 256 in
  for s = 0 to Lr0.n_states lr0 - 1 do
    Kernel_tbl.replace core_index (Lr0.state lr0 s).kernel s
  done;
  let result : (int * int, Bitset.t) Hashtbl.t = Hashtbl.create 256 in
  for s = 0 to Array.length t.states - 1 do
    let core = state_core t s in
    match Kernel_tbl.find_opt core_index core with
    | None ->
        invalid_arg "Lr1.merged_lookaheads: LR(1) core not an LR(0) state"
    | Some q ->
        List.iter
          (fun (pid, set) ->
            match Hashtbl.find_opt result (q, pid) with
            | Some acc -> ignore (Bitset.union_into ~into:acc set)
            | None -> Hashtbl.replace result (q, pid) (Bitset.copy set))
          (reduce_actions t s)
  done;
  result
