(** Canonical LR(k) construction — the reference implementation the
    LALR(k) extension is validated against.

    Direct generalisation of {!Lr1}: items carry a ≤k-string of
    look-ahead terminals; closure concatenates FIRSTk of the suffix with
    the item's string. State counts explode quickly in [k] — this
    exists for cross-validation on small grammars, not for production
    use (that is the whole point of the paper). *)

module Kstring = Lalr_sets.Kstring

type t

val build : k:int -> Grammar.t -> t
(** Raises [Invalid_argument] when [k < 1]. *)

val build_opt : k:int -> Grammar.t -> t option
(** Non-raising {!build}: [None] when [k < 1]. *)

val k : t -> int
val n_states : t -> int

val merged_lookaheads :
  t -> Lalr_automaton.Lr0.t -> (int * int, Kstring.Set.t) Hashtbl.t
(** Merge states by LR(0) core onto the given automaton (same grammar):
    maps every reduction pair [(lr0_state, production)] to the union of
    the final items' look-ahead strings — the LALR(k) sets by
    definition. Cross-validated against {!Lalr_core.Lalr_k} in the test
    suite. *)
