(** The boxed data layout the PR 7 refactor replaced, kept verbatim.

    A frozen copy of {!Lalr_core.Lalr}'s pre-CSR hot path: relations as
    [int list array]s plus a [Hashtbl] reduction index, and the Digraph
    fixpoint walking cons lists with an [option]-boxed value arena. It
    exists for two consumers:

    - the [layout] bench stage, whose baseline arm must measure the old
      representation doing exactly the old work;
    - the byte-identity test, which pins the refactored engine's
      [Read]/[Follow]/[LA] sets and relation rows to this reference on
      every suite grammar.

    Deliberately untraced and unbudgeted — a pure reference
    implementation, not a production code path. *)

type relations

val relations : ?analysis:Analysis.t -> Lalr_automaton.Lr0.t -> relations
(** Boxed stage 1: [DR], [reads], [includes], [lookback] and the
    hashtable reduction numbering, with the original list orders
    ([reads]/[lookback] reverse-insertion, [includes] insertion). *)

type follow_sets

val solve_follow : relations -> follow_sets
(** Boxed stage 2: the two list-walking Digraph runs. *)

type t

val of_stages : relations -> follow_sets -> t
(** Boxed stage 3: the look-ahead union over [lookback]. *)

val compute : Lalr_automaton.Lr0.t -> t

val automaton : t -> Lalr_automaton.Lr0.t
val n_nt_transitions : t -> int
val dr : t -> int -> Lalr_sets.Bitset.t
val read : t -> int -> Lalr_sets.Bitset.t
val follow : t -> int -> Lalr_sets.Bitset.t

val reads : t -> int -> int list
(** Successor rows in their original boxed order — the order the CSR
    rows must reproduce byte for byte. *)

val includes : t -> int -> int list
val n_reductions : t -> int
val reduction : t -> int -> int * int
val lookback : t -> int -> int list
val la : t -> int -> Lalr_sets.Bitset.t
