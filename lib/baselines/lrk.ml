module Kstring = Lalr_sets.Kstring
module KSet = Kstring.Set
module Vec = Lalr_sets.Vec
module Item = Lalr_automaton.Item
module Lr0 = Lalr_automaton.Lr0
module Budget = Lalr_guard.Budget

(* An LR(k) item is an LR(0) item with one ≤k-string. States are sorted
   lists of items, interned by structural equality. *)

type item = int * int list

type state = { kernel : item list; mutable closure : item list }

type t = {
  grammar : Grammar.t;
  items : Item.table;
  k : int;
  states : state array;
}

let k t = t.k
let n_states t = Array.length t.states

module Kernel_tbl = Hashtbl.Make (struct
  type t = item list

  let equal = ( = )
  let hash = Hashtbl.hash
end)

let closure_of g tbl firstk kk kernel =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let queue = Queue.create () in
  let add (item : item) =
    if not (Hashtbl.mem seen item) then begin
      Hashtbl.replace seen item ();
      acc := item :: !acc;
      Queue.add item queue
    end
  in
  List.iter add kernel;
  while not (Queue.is_empty queue) do
    let lr0, w = Queue.pop queue in
    match Item.next_symbol tbl lr0 with
    | Some (Symbol.N b) ->
        let prod = Grammar.production g (Item.prod tbl lr0) in
        let dot = Item.dot tbl lr0 in
        let suffix_first = Firstk.sentence firstk prod.rhs ~from:(dot + 1) in
        let contexts =
          Kstring.concat_sets kk suffix_first (KSet.singleton w)
        in
        Array.iter
          (fun pid ->
            let init = Item.initial tbl ~prod:pid in
            KSet.iter (fun u -> add (init, u)) contexts)
          (Grammar.productions_of g b)
    | Some (Symbol.T _) | None -> ()
  done;
  List.sort compare !acc

let build ~k:kk g =
  if kk < 1 then invalid_arg "Lrk.build: k must be >= 1";
  Budget.with_stage "lr(k)" @@ fun () ->
  let tbl = Item.make g in
  let firstk = Firstk.compute ~k:kk g in
  let states : state Vec.t = Vec.create () in
  let index = Kernel_tbl.create 1024 in
  let partial () =
    Printf.sprintf "%d LR(%d) states constructed" (Vec.length states) kk
  in
  let intern kernel =
    match Kernel_tbl.find_opt index kernel with
    | Some id -> id
    | None ->
        Budget.count_state ~partial ();
        let id = Vec.push states { kernel; closure = [] } in
        Kernel_tbl.replace index kernel id;
        id
  in
  ignore (intern [ (Item.initial tbl ~prod:0, []) ]);
  let cursor = ref 0 in
  while !cursor < Vec.length states do
    Budget.burn ();
    let s = Vec.get states !cursor in
    let closure = closure_of g tbl firstk kk s.kernel in
    Budget.count_items ~partial (List.length closure);
    s.closure <- closure;
    let groups : (Symbol.t, item list) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (lr0, w) ->
        match Item.next_symbol tbl lr0 with
        | None -> ()
        | Some sym ->
            let advanced = (Item.advance tbl lr0, w) in
            (match Hashtbl.find_opt groups sym with
            | None ->
                order := sym :: !order;
                Hashtbl.replace groups sym [ advanced ]
            | Some l -> Hashtbl.replace groups sym (advanced :: l)))
      closure;
    List.iter
      (fun sym ->
        let kernel = List.sort compare (Hashtbl.find groups sym) in
        ignore (intern kernel))
      (List.rev !order);
    incr cursor
  done;
  { grammar = g; items = tbl; k = kk; states = Vec.to_array states }

let build_opt ~k g = if k < 1 then None else Some (build ~k g)

let merged_lookaheads t (lr0 : Lr0.t) =
  if not (Grammar.equal_structure t.grammar (Lr0.grammar lr0)) then
    invalid_arg "Lrk.merged_lookaheads: different grammars";
  let core_index = Hashtbl.create 256 in
  for s = 0 to Lr0.n_states lr0 - 1 do
    Hashtbl.replace core_index (Array.to_list (Lr0.state lr0 s).kernel) s
  done;
  let result : (int * int, KSet.t) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun st ->
      let core =
        List.map fst st.kernel |> List.sort_uniq Int.compare
      in
      match Hashtbl.find_opt core_index core with
      | None -> invalid_arg "Lrk.merged_lookaheads: core not an LR(0) state"
      | Some q ->
          List.iter
            (fun (lr0_item, w) ->
              if Item.is_final t.items lr0_item then begin
                let pid = Item.prod t.items lr0_item in
                if pid <> 0 then
                  let prev =
                    Option.value
                      (Hashtbl.find_opt result (q, pid))
                      ~default:KSet.empty
                  in
                  Hashtbl.replace result (q, pid) (KSet.add w prev)
              end)
            st.closure)
    t.states;
  result
