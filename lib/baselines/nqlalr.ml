module Bitset = Lalr_sets.Bitset
module Digraph = Lalr_sets.Digraph
module Lr0 = Lalr_automaton.Lr0
module Budget = Lalr_guard.Budget

type t = {
  automaton : Lr0.t;
  (* FollowNQ per state (meaningful for targets of nonterminal
     transitions; empty elsewhere). *)
  follow_nq : Bitset.t array;
  (* reduction (state, prod) -> LA set *)
  la : (int * int, Bitset.t) Hashtbl.t;
}

let automaton t = t.automaton

let compute (a : Lr0.t) =
  Budget.with_stage "nqlalr" @@ fun () ->
  let g = Lr0.grammar a in
  let analysis = Analysis.compute g in
  let n_term = Grammar.n_terminals g in
  let n_states = Lr0.n_states a in
  let nx = Lr0.n_nt_transitions a in
  (* Per-state direct reads (shiftable terminals) and state-level reads
     edges; identical to the exact DR/reads because those depend only on
     the transition target. *)
  let dr = Array.init n_states (fun _ -> Bitset.create n_term) in
  let succ = Array.make n_states [] in
  let add_edge src dst = succ.(src) <- dst :: succ.(src) in
  for x = 0 to nx - 1 do
    Budget.burn ();
    let r = Lr0.nt_transition_target a x in
    List.iter
      (fun (sym, target) ->
        match sym with
        | Symbol.T t -> Bitset.add dr.(r) t
        | Symbol.N c ->
            if Analysis.nullable analysis c then add_edge r target)
      (Lr0.transitions a r)
  done;
  (* State-merged includes: exact edge (p,A) includes (p',B) becomes
     goto(p,A) -> goto(p',B). *)
  for x' = 0 to nx - 1 do
    Budget.burn ();
    let p', b = Lr0.nt_transition a x' in
    let r' = Lr0.nt_transition_target a x' in
    Array.iter
      (fun pid ->
        Budget.burn ();
        let prod = Grammar.production g pid in
        let len = Array.length prod.rhs in
        let state = ref p' in
        for i = 0 to len - 1 do
          (match prod.rhs.(i) with
          | Symbol.N c
            when Analysis.nullable_sentence analysis prod.rhs ~from:(i + 1)
                   ~upto:len ->
              let r = Lr0.goto_exn a !state (Symbol.N c) in
              add_edge r r'
          | Symbol.N _ | Symbol.T _ -> ());
          state := Lr0.goto_exn a !state prod.rhs.(i)
        done)
      (Grammar.productions_of g b)
  done;
  let succ = Array.map (fun l -> List.sort_uniq Int.compare l) succ in
  let follow_nq, _ =
    Digraph.ForBitset.run ~n:n_states
      ~successors:(fun s -> succ.(s))
      ~init:(fun s -> dr.(s))
  in
  (* LA_NQ(q, A→ω) = ⋃ FollowNQ(goto(p,A)) over lookback pairs. *)
  let la : (int * int, Bitset.t) Hashtbl.t = Hashtbl.create 256 in
  for q = 0 to n_states - 1 do
    List.iter
      (fun pid -> Hashtbl.replace la (q, pid) (Bitset.create n_term))
      (Lr0.reductions a q)
  done;
  for x = 0 to nx - 1 do
    Budget.burn ();
    let p, aa = Lr0.nt_transition a x in
    let r = Lr0.nt_transition_target a x in
    Array.iter
      (fun pid ->
        if pid <> 0 then begin
          let prod = Grammar.production g pid in
          let q = Lr0.traverse a p prod.rhs ~from:0 in
          match Hashtbl.find_opt la (q, pid) with
          | Some acc -> ignore (Bitset.union_into ~into:acc follow_nq.(r))
          | None ->
              Budget.broken_invariant ~stage:"nqlalr"
                (Printf.sprintf
                   "state %d reached by walking production %d lacks the \
                    corresponding reduction"
                   q pid)
        end)
      (Grammar.productions_of g aa)
  done;
  { automaton = a; follow_nq; la }

let lookahead t ~state ~prod =
  match Hashtbl.find_opt t.la (state, prod) with
  | Some s -> s
  | None -> raise Not_found

let is_nqlalr1 t =
  let a = t.automaton in
  let n_term = Grammar.n_terminals (Lr0.grammar a) in
  let ok = ref true in
  for q = 0 to Lr0.n_states a - 1 do
    let reds = Lr0.reductions a q in
    if reds <> [] then begin
      let seen = Bitset.create n_term in
      List.iter
        (fun (sym, _) ->
          match sym with
          | Symbol.T tt -> Bitset.add seen tt
          | Symbol.N _ -> ())
        (Lr0.transitions a q);
      List.iter
        (fun pid ->
          let set = lookahead t ~state:q ~prod:pid in
          if not (Bitset.disjoint set seen) then ok := false;
          ignore (Bitset.union_into ~into:seen set))
        reds
    end
  done;
  !ok
