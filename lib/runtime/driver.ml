module Tables = Lalr_tables.Tables
module Lr0 = Lalr_automaton.Lr0
module Budget = Lalr_guard.Budget

type error = {
  position : int;
  state : int;
  found : Token.t;
  expected : int list;
}

let pp_error g ppf e =
  Format.fprintf ppf "syntax error at token %d: found %a, expected one of:"
    e.position (Token.pp g) e.found;
  List.iter
    (fun t -> Format.fprintf ppf " %s" (Grammar.terminal_name g t))
    e.expected

let expected_in tables g state =
  let n_term = Grammar.n_terminals g in
  let acc = ref [] in
  for t = n_term - 1 downto 0 do
    match Tables.action tables ~state ~terminal:t with
    | Tables.Error -> ()
    | Tables.Shift _ | Tables.Reduce _ | Tables.Accept -> acc := t :: !acc
  done;
  !acc

(* Ensure terminated input. Tokens after an interior eof can never be
   consumed by the machine; [trailing] reports the position and first
   token of any such tail so callers surface a syntax error instead of
   silently dropping input. *)
let terminate tokens =
  let rec go i = function
    | [] -> ([ Token.eof ], None)
    | tok :: rest when tok.Token.terminal = 0 ->
        let trailing =
          match rest with [] -> None | t :: _ -> Some (i + 1, t)
        in
        ([ tok ], trailing)
    | tok :: rest ->
        let kept, trailing = go (i + 1) rest in
        (tok :: kept, trailing)
  in
  go 0 tokens

let broken = Budget.broken_invariant ~stage:"driver"

(* The engine. Stack entries pair a state with the tree built for the
   symbol that entered it; the bottom entry has no tree. *)
let run tables tokens =
  let g = Lr0.grammar (Tables.automaton tables) in
  let reductions = ref [] in
  let input, trailing = terminate tokens in
  let stack = ref [ (0, None) ] in
  let top_state () =
    match !stack with
    | (s, _) :: _ -> s
    | [] -> broken "parse stack is empty"
  in
  let rec step pos input =
    Budget.burn ();
    match input with
    | [] -> broken "token stream lost its eof terminator"
    | tok :: rest -> (
        let state = top_state () in
        match Tables.action tables ~state ~terminal:tok.Token.terminal with
        | Tables.Shift q ->
            stack := (q, Some (Tree.Leaf tok)) :: !stack;
            step (pos + 1) rest
        | Tables.Reduce prod ->
            let p = Grammar.production g prod in
            let n = Array.length p.rhs in
            let children = ref [] in
            for _ = 1 to n do
              match !stack with
              | (_, Some tree) :: tl ->
                  children := tree :: !children;
                  stack := tl
              | _ -> broken "reduce pops past the bottom of the stack"
            done;
            reductions := prod :: !reductions;
            let tree = Tree.Node { prod; children = !children } in
            let state = top_state () in
            (match Tables.goto tables ~state ~nonterminal:p.lhs with
            | Some q -> stack := (q, Some tree) :: !stack
            | None -> broken "missing goto entry after a reduce");
            step pos input
        | Tables.Accept -> (
            match trailing with
            | Some (tpos, ttok) ->
                (* The machine accepted, but unconsumable tokens follow
                   the interior eof: that is a syntax error at the first
                   of them, where only end of input was legal. *)
                Error
                  { position = tpos; state; found = ttok; expected = [ 0 ] }
            | None -> (
                (* Stack: [accept_state, tree(start); state0]. *)
                match !stack with
                | (_, Some tree) :: _ -> Ok tree
                | _ -> broken "accept with no tree on the stack"))
        | Tables.Error ->
            Error
              {
                position = pos;
                state;
                found = tok;
                expected = expected_in tables g state;
              })
  in
  match step 0 input with
  | Ok tree -> Ok (tree, List.rev !reductions)
  | Error e -> Error e

let parse tables tokens = Result.map fst (run tables tokens)
let right_parse tables tokens = Result.map snd (run tables tokens)
let accepts tables tokens = Result.is_ok (parse tables tokens)

let parse_names tables names =
  let g = Lr0.grammar (Tables.automaton (tables : Tables.t)) in
  parse tables (Token.of_names g names)

(* ------------------------------------------------------------------ *)
(* Panic-mode recovery                                                *)
(* ------------------------------------------------------------------ *)

type recovery_outcome = { tree : Tree.t option; errors : error list }

let parse_with_recovery tables tokens =
  let g = Lr0.grammar (Tables.automaton tables) in
  match Grammar.find_terminal g "error" with
  | None -> (
      match parse tables tokens with
      | Ok tree -> { tree = Some tree; errors = [] }
      | Error e -> { tree = None; errors = [ e ] })
  | Some error_term ->
      let input, trailing = terminate tokens in
      let errors = ref [] in
      let stack = ref [ (0, None) ] in
      let top_state () =
        match !stack with
        | (s, _) :: _ -> s
        | [] -> broken "parse stack is empty"
      in
      (* Pop until a state can shift [error]; None if the stack runs
         dry. *)
      let rec pop_to_error_state () =
        let state = top_state () in
        match Tables.action tables ~state ~terminal:error_term with
        | Tables.Shift q ->
            stack :=
              (q, Some (Tree.Leaf (Token.make ~lexeme:"<error>" error_term)))
              :: !stack;
            true
        | _ -> (
            match !stack with
            | _ :: (_ :: _ as rest) ->
                stack := rest;
                pop_to_error_state ()
            | _ -> false)
      in
      (* Discard tokens until one has a non-error action, keeping the
         input position honest for later error reports. *)
      let rec synchronise pos input =
        match input with
        | [] -> None
        | tok :: rest ->
            let state = top_state () in
            if
              Tables.action tables ~state ~terminal:tok.Token.terminal
              <> Tables.Error
            then Some (pos, input)
            else if tok.Token.terminal = 0 then None (* never discard eof *)
            else synchronise (pos + 1) rest
      in
      let last_panic = ref (-1) in
      let rec step pos input =
        Budget.burn ();
        match input with
        | [] -> None
        | tok :: rest -> (
            let state = top_state () in
            match Tables.action tables ~state ~terminal:tok.Token.terminal with
            | Tables.Shift q ->
                stack := (q, Some (Tree.Leaf tok)) :: !stack;
                step (pos + 1) rest
            | Tables.Reduce prod ->
                let p = Grammar.production g prod in
                let children = ref [] in
                for _ = 1 to Array.length p.rhs do
                  match !stack with
                  | (_, Some tree) :: tl ->
                      children := tree :: !children;
                      stack := tl
                  | _ -> broken "reduce pops past the bottom of the stack"
                done;
                let tree = Tree.Node { prod; children = !children } in
                let state = top_state () in
                (match Tables.goto tables ~state ~nonterminal:p.lhs with
                | Some q -> stack := (q, Some tree) :: !stack
                | None -> broken "missing goto entry after a reduce");
                step pos input
            | Tables.Accept -> (
                (match trailing with
                | Some (tpos, ttok) ->
                    errors :=
                      {
                        position = tpos;
                        state;
                        found = ttok;
                        expected = [ 0 ];
                      }
                      :: !errors
                | None -> ());
                match !stack with
                | (_, Some tree) :: _ -> Some tree
                | _ -> broken "accept with no tree on the stack")
            | Tables.Error ->
                errors :=
                  {
                    position = pos;
                    state;
                    found = tok;
                    expected = expected_in tables g state;
                  }
                  :: !errors;
                if pop_to_error_state () then begin
                  (* Guard against panic loops: if a previous recovery
                     already happened at this position without consuming
                     anything, force-discard the offending token. *)
                  let pos, input =
                    if !last_panic = pos && tok.Token.terminal <> 0 then
                      (pos + 1, rest)
                    else (pos, input)
                  in
                  last_panic := pos;
                  match synchronise pos input with
                  | None -> None
                  | Some (pos, input) -> step pos input
                end
                else None)
      in
      let tree = step 0 input in
      { tree; errors = List.rev !errors }
