(** Tokens fed to the parser driver.

    A token is a terminal id plus the matched text (the text is carried
    into parse-tree leaves but never interpreted by the driver). *)

type t = { terminal : int; lexeme : string }

val make : ?lexeme:string -> int -> t
(** [lexeme] defaults to [""]. *)

val of_names : Grammar.t -> string list -> t list
(** Resolves terminal names; the name is kept as the lexeme. Raises
    [Invalid_argument] on an unknown terminal name. Convenient in tests
    and examples: [Token.of_names g ["id"; "+"; "id"]]. *)

val of_names_res : Grammar.t -> string list -> (t list, string) result
(** Non-raising {!of_names}: [Error name] carries the first unknown
    terminal name. *)

val eof : t
(** The end-of-input token (terminal 0). *)

val pp : Grammar.t -> Format.formatter -> t -> unit
