(** The table-driven LR parser.

    A standard shift-reduce engine over {!Lalr_tables.Tables}: a stack of
    (state, tree) pairs, actions looked up by (state, next terminal).
    Works with tables built from any look-ahead method, which is how the
    test suite demonstrates behavioural equivalence of the methods (not
    just set equality). *)

type error = {
  position : int;  (** 0-based index of the offending token *)
  state : int;
  found : Token.t;
  expected : int list;
      (** terminal ids with a non-[Error] action in [state], ascending *)
}

val pp_error : Grammar.t -> Format.formatter -> error -> unit

val parse : Lalr_tables.Tables.t -> Token.t list -> (Tree.t, error) result
(** Parses a token list (the end-of-input token is appended if absent).
    Tokens after an embedded eof are a syntax error: the machine parses
    up to the eof, and if it accepts, the first trailing token is
    reported with [expected = [0]] (only end of input was legal there).
    On success the result is the tree rooted at the user start symbol.

    Invariant: the tree's yield equals the consumed input, and
    [Tree.validate] holds — both are exercised by property tests.

    Internal invariant violations raise
    {!Lalr_guard.Budget.Internal_error} (stage ["driver"]) instead of
    asserting; an ambient {!Lalr_guard.Budget.t} bounds the number of
    parser steps. *)

val accepts : Lalr_tables.Tables.t -> Token.t list -> bool

val parse_names :
  Lalr_tables.Tables.t -> string list -> (Tree.t, error) result
(** Convenience wrapper over {!Token.of_names}. *)

val right_parse : Lalr_tables.Tables.t -> Token.t list -> (int list, error) result
(** The sequence of productions reduced, in reduction order — the
    reversed rightmost derivation that yacc-style parsers emit. *)

(** {2 Error recovery}

    Yacc-style panic mode. The grammar opts in by declaring a terminal
    named ["error"] and using it in productions
    ([stmt : error semicolon | ...]). On a syntax error the engine pops
    states until one can shift [error], shifts it (as a leaf with lexeme
    ["<error>"]), then discards input tokens until one is acceptable —
    collecting every error instead of stopping at the first. *)

type recovery_outcome = {
  tree : Tree.t option;
      (** [Some] when recovery reached accept; [None] when the input
          was abandoned (no state could shift [error], or the end of
          input arrived mid-panic). *)
  errors : error list;  (** in input order; empty means a clean parse *)
}

val parse_with_recovery :
  Lalr_tables.Tables.t -> Token.t list -> recovery_outcome
(** Falls back to the behaviour of {!parse} (one error, no tree) when
    the grammar has no ["error"] terminal. Tokens after an embedded eof
    are reported as a syntax error (as in {!parse}) while the tree built
    up to the eof is kept. *)
