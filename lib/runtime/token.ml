type t = { terminal : int; lexeme : string }

let make ?(lexeme = "") terminal = { terminal; lexeme }

let of_names_res g names =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
        match Grammar.find_terminal g name with
        | Some t -> go ({ terminal = t; lexeme = name } :: acc) rest
        | None -> Error name)
  in
  go [] names

let of_names g names =
  match of_names_res g names with
  | Ok toks -> toks
  | Error name ->
      invalid_arg (Printf.sprintf "Token.of_names: unknown terminal %S" name)

let eof = { terminal = 0; lexeme = "$" }

let pp g ppf t =
  let name = Grammar.terminal_name g t.terminal in
  if t.lexeme = "" || t.lexeme = name then Format.pp_print_string ppf name
  else Format.fprintf ppf "%s(%s)" name t.lexeme
