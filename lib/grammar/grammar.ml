type assoc = Left | Right | Nonassoc

type loc = { file : string; line : int }

let synthetic_loc name = { file = "<" ^ name ^ ">"; line = 0 }
let is_synthetic l = l.line = 0

let pp_loc ppf l =
  if is_synthetic l then Format.fprintf ppf "%s" l.file
  else Format.fprintf ppf "%s:%d" l.file l.line

type locinfo = {
  li_source : string;
  li_rules : int list;
  li_tokens : (string * int) list;
  li_prec : int list;
}

type locations = {
  source : string;
  prod_locs : loc array;  (* per production id; index 0 synthetic *)
  term_locs : loc array;  (* per terminal id; index 0 synthetic *)
  prec_locs : loc array;  (* per precedence level, index level-1 *)
}

type production = {
  id : int;
  lhs : int;
  rhs : Symbol.t array;
  prec : (int * assoc) option;
}

type t = {
  name : string;
  terminal_names : string array;
  nonterminal_names : string array;
  productions : production array;
  by_lhs : int array array;
  start : int;
  terminal_prec : (int * assoc) option array;
  locs : locations;
}

let eof_name = "$"

let make ?(name = "grammar") ?(prec = []) ?locs ~terminals ~start ~rules () =
  if rules = [] then invalid_arg "Grammar.make: no rules";
  (* Terminal table: $ first, then declarations in order. *)
  List.iter
    (fun t ->
      if t = eof_name then
        invalid_arg "Grammar.make: \"$\" is reserved for end-of-input")
    terminals;
  let terminal_names = Array.of_list (eof_name :: terminals) in
  let tmap = Hashtbl.create 64 in
  Array.iteri
    (fun i n ->
      if Hashtbl.mem tmap n then
        invalid_arg (Printf.sprintf "Grammar.make: duplicate terminal %S" n);
      Hashtbl.add tmap n i)
    terminal_names;
  (* Nonterminal table: augmented start first, then lhs in order of first
     appearance. *)
  let nt_order = ref [] in
  let ntmap = Hashtbl.create 64 in
  (* The augmented start needs a name not already taken by a terminal or
     by any rule's left-hand side. *)
  let lhs_names = List.map (fun (l, _, _) -> l) rules in
  let augmented =
    let rec fresh candidate =
      if Hashtbl.mem tmap candidate || List.mem candidate lhs_names then
        fresh (candidate ^ "'")
      else candidate
    in
    fresh (start ^ "'")
  in
  Hashtbl.add ntmap augmented 0;
  nt_order := [ augmented ];
  let declare_nt n =
    if Hashtbl.mem tmap n then
      invalid_arg
        (Printf.sprintf "Grammar.make: %S is both a terminal and an lhs" n);
    if not (Hashtbl.mem ntmap n) then begin
      Hashtbl.add ntmap n (List.length !nt_order);
      nt_order := !nt_order @ [ n ]
    end
  in
  List.iter (fun (lhs, _, _) -> declare_nt lhs) rules;
  let nonterminal_names = Array.of_list !nt_order in
  let start_id =
    match Hashtbl.find_opt ntmap start with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Grammar.make: start symbol %S has no rule" start)
  in
  (* Precedence levels, lowest first, as in yacc. *)
  let terminal_prec = Array.make (Array.length terminal_names) None in
  List.iteri
    (fun level (a, names) ->
      List.iter
        (fun n ->
          match Hashtbl.find_opt tmap n with
          | Some i ->
              if terminal_prec.(i) <> None then
                invalid_arg
                  (Printf.sprintf
                     "Grammar.make: terminal %S declared in two precedence \
                      levels"
                     n);
              terminal_prec.(i) <- Some (level + 1, a)
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Grammar.make: precedence declaration for unknown \
                    terminal %S"
                   n))
        names)
    prec;
  let resolve n =
    match Hashtbl.find_opt tmap n with
    | Some i -> Symbol.T i
    | None -> (
        match Hashtbl.find_opt ntmap n with
        | Some i -> Symbol.N i
        | None ->
            invalid_arg (Printf.sprintf "Grammar.make: unknown symbol %S" n))
  in
  let default_prec rhs =
    (* Rightmost terminal with a declared precedence. *)
    let p = ref None in
    Array.iter
      (function
        | Symbol.T i -> ( match terminal_prec.(i) with Some _ as s -> p := s | None -> ())
        | Symbol.N _ -> ())
      rhs;
    !p
  in
  let user_productions =
    List.mapi
      (fun i (lhs, rhs_names, prec_override) ->
        let rhs = Array.of_list (List.map resolve rhs_names) in
        let prec =
          match prec_override with
          | None -> default_prec rhs
          | Some n -> (
              match Hashtbl.find_opt tmap n with
              | Some ti -> (
                  match terminal_prec.(ti) with
                  | Some _ as s -> s
                  | None ->
                      invalid_arg
                        (Printf.sprintf
                           "Grammar.make: %%prec terminal %S has no declared \
                            precedence"
                           n))
              | None ->
                  invalid_arg
                    (Printf.sprintf "Grammar.make: unknown %%prec terminal %S"
                       n))
        in
        { id = i + 1; lhs = Hashtbl.find ntmap lhs; rhs; prec })
      rules
  in
  let p0 =
    { id = 0; lhs = 0; rhs = [| Symbol.N start_id; Symbol.eof |]; prec = None }
  in
  let productions = Array.of_list (p0 :: user_productions) in
  let by_lhs_lists = Array.make (Array.length nonterminal_names) [] in
  Array.iter
    (fun p -> by_lhs_lists.(p.lhs) <- p.id :: by_lhs_lists.(p.lhs))
    productions;
  let by_lhs =
    Array.map (fun l -> Array.of_list (List.rev l)) by_lhs_lists
  in
  (* Locations: synthetic everywhere by default; a reader supplies real
     lines through [?locs], aligned positionally with [rules] and
     [prec] and by name for tokens. *)
  let locs =
    let synth = synthetic_loc name in
    let source =
      match locs with Some l -> l.li_source | None -> synth.file
    in
    let at line = if line <= 0 then synth else { file = source; line } in
    let prod_locs = Array.make (Array.length productions) synth in
    (match locs with
    | Some { li_rules; _ } ->
        List.iteri
          (fun i line ->
            if i + 1 < Array.length prod_locs then
              prod_locs.(i + 1) <- at line)
          li_rules
    | None -> ());
    let term_locs = Array.make (Array.length terminal_names) synth in
    (match locs with
    | Some { li_tokens; _ } ->
        List.iter
          (fun (tname, line) ->
            match Hashtbl.find_opt tmap tname with
            | Some i -> term_locs.(i) <- at line
            | None -> ())
          li_tokens
    | None -> ());
    let prec_locs = Array.make (List.length prec) synth in
    (match locs with
    | Some { li_prec; _ } ->
        List.iteri
          (fun i line ->
            if i < Array.length prec_locs then prec_locs.(i) <- at line)
          li_prec
    | None -> ());
    { source; prod_locs; term_locs; prec_locs }
  in
  {
    name;
    terminal_names;
    nonterminal_names;
    productions;
    by_lhs;
    start = start_id;
    terminal_prec;
    locs;
  }

let n_terminals g = Array.length g.terminal_names
let n_nonterminals g = Array.length g.nonterminal_names
let n_productions g = Array.length g.productions
let terminal_name g i = g.terminal_names.(i)
let nonterminal_name g i = g.nonterminal_names.(i)

let symbol_name g = function
  | Symbol.T i -> terminal_name g i
  | Symbol.N i -> nonterminal_name g i

let production g i = g.productions.(i)
let productions_of g a = g.by_lhs.(a)

let find_terminal g n =
  let rec go i =
    if i = Array.length g.terminal_names then None
    else if g.terminal_names.(i) = n then Some i
    else go (i + 1)
  in
  go 0

let find_nonterminal g n =
  let rec go i =
    if i = Array.length g.nonterminal_names then None
    else if g.nonterminal_names.(i) = n then Some i
    else go (i + 1)
  in
  go 0

let find_symbol g n =
  match find_terminal g n with
  | Some i -> Some (Symbol.T i)
  | None -> (
      match find_nonterminal g n with
      | Some i -> Some (Symbol.N i)
      | None -> None)

let rhs_length g i = Array.length g.productions.(i).rhs
let source g = g.locs.source
let production_loc g i = g.locs.prod_locs.(i)
let terminal_loc g i = g.locs.term_locs.(i)

let prec_level_loc g level =
  let a = g.locs.prec_locs in
  if level >= 1 && level <= Array.length a then a.(level - 1)
  else synthetic_loc g.name

let nonterminal_loc g n =
  (* First production of the nonterminal, skipping the augmented one. *)
  let prods = g.by_lhs.(n) in
  let best = ref (synthetic_loc g.name) in
  (try
     Array.iter
       (fun pid ->
         if pid <> 0 then begin
           best := g.locs.prod_locs.(pid);
           raise Exit
         end)
       prods
   with Exit -> ());
  !best

let symbols_count g =
  Array.fold_left
    (fun acc p -> acc + 1 + Array.length p.rhs)
    0 g.productions

let pp_production g ppf p =
  Format.fprintf ppf "%s →" (nonterminal_name g p.lhs);
  if Array.length p.rhs = 0 then Format.fprintf ppf " ε"
  else Array.iter (fun s -> Format.fprintf ppf " %s" (symbol_name g s)) p.rhs

let pp_item g ppf prod dot =
  let p = g.productions.(prod) in
  Format.fprintf ppf "%s →" (nonterminal_name g p.lhs);
  Array.iteri
    (fun i s ->
      if i = dot then Format.fprintf ppf " .";
      Format.fprintf ppf " %s" (symbol_name g s))
    p.rhs;
  if dot = Array.length p.rhs then Format.fprintf ppf " ."

let pp ppf g =
  Format.fprintf ppf "@[<v>grammar %s@," g.name;
  Format.fprintf ppf "terminals:";
  Array.iteri
    (fun i n -> if i > 0 then Format.fprintf ppf " %s" n)
    g.terminal_names;
  Format.fprintf ppf "@,start: %s@," (nonterminal_name g g.start);
  Array.iter
    (fun p -> Format.fprintf ppf "%3d: %a@," p.id (pp_production g) p)
    g.productions;
  Format.fprintf ppf "@]"

let equal_structure a b =
  a.terminal_names = b.terminal_names
  && a.nonterminal_names = b.nonterminal_names
  && a.start = b.start
  && Array.length a.productions = Array.length b.productions
  && Array.for_all2
       (fun (p : production) (q : production) ->
         p.lhs = q.lhs
         && Array.length p.rhs = Array.length q.rhs
         && Array.for_all2 Symbol.equal p.rhs q.rhs)
       a.productions b.productions

(* Content digest over everything that determines analysis results:
   symbol tables, productions, and both precedence channels. [name] and
   source locations are deliberately excluded so the same grammar text
   read twice — or rehydrated from the artifact store — digests
   identically. The leading tag versions the serialization itself. *)
let digest g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "lalr-grammar-digest-v1";
  let str s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\x00'
  in
  let int n =
    Buffer.add_string buf (string_of_int n);
    Buffer.add_char buf ';'
  in
  let prec = function
    | None -> Buffer.add_char buf '.'
    | Some (level, assoc) ->
        int level;
        Buffer.add_char buf
          (match assoc with Left -> 'l' | Right -> 'r' | Nonassoc -> 'n')
  in
  Array.iter str g.terminal_names;
  Buffer.add_char buf '\x01';
  Array.iter str g.nonterminal_names;
  Buffer.add_char buf '\x01';
  int g.start;
  Array.iter
    (fun (p : production) ->
      Buffer.add_char buf '\x02';
      int p.lhs;
      Array.iter
        (fun s ->
          match s with
          | Symbol.T t ->
              Buffer.add_char buf 't';
              int t
          | Symbol.N n ->
              Buffer.add_char buf 'n';
              int n)
        p.rhs;
      prec p.prec)
    g.productions;
  Buffer.add_char buf '\x01';
  Array.iter prec g.terminal_prec;
  Digest.to_hex (Digest.string (Buffer.contents buf))
