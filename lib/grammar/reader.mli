(** Reader for a yacc/menhir-like grammar text format.

    The format:

    {v
    /* C-style and */  // line comments
    %token PLUS TIMES LPAREN RPAREN ID
    %start expr
    %left PLUS
    %left TIMES
    %%
    expr   : expr PLUS term | term ;
    term   : term TIMES factor | factor ;
    factor : LPAREN expr RPAREN | ID ;
    v}

    - Declarations: [%token], [%start], [%left], [%right], [%nonassoc].
      Precedence declarations order levels from lowest (first) to highest,
      as in yacc.
    - Rules follow the [%%] separator. Alternatives are separated by [|];
      a rule ends with [;]. An empty alternative is written either as
      nothing ([x : | y ;]) or explicitly as [%empty].
    - A production may end with [%prec TERMINAL] to override its
      precedence.
    - Quoted atoms (['+'] or ["+"]) are terminals, implicitly declared on
      first use.
    - Identifiers are [[A-Za-z_][A-Za-z0-9_']*]; integers are also
      accepted as symbol names.

    The start symbol defaults to the lhs of the first rule when [%start]
    is absent. *)

type error = {
  file : string option;
      (** the [?source]/path the text came from; [None] for raw strings *)
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  message : string;
}

exception Error of error

val pp_error : Format.formatter -> error -> unit
(** [file:line:col: message], or [line:col: message] when [file] is
    [None]. *)

val of_string : ?name:string -> ?source:string -> string -> Grammar.t
(** Parses grammar text. Raises {!Error} on lexical or syntax errors and
    [Invalid_argument] on semantic errors rejected by {!Grammar.make}
    (unknown symbols, duplicate precedence, ...). [source] is the file
    name recorded in the grammar's {!Grammar.locations} (defaults to the
    synthetic ["<name>"]); per-production, per-token and per-precedence
    line numbers are always recorded. *)

val of_string_tolerant :
  ?name:string -> ?source:string -> string -> Grammar.t option * error list
(** Error-recovering variant of {!of_string}: never raises on malformed
    input. Lexical errors skip a character; syntax errors resynchronise
    at the next declaration keyword, ['%%'], or [';'], so one call
    collects {e every} diagnostic (capped at 100). The grammar is
    [Some] when enough of the text survived to build one (a best-effort
    grammar may coexist with diagnostics); the error list is in input
    order, and on error-free input [(Some g, [])] coincides with what
    {!of_string} returns. *)

val read_file : string -> string
(** The file's entire contents (binary-safe); shared by the file entry
    points here and in {!Menhir_reader}. *)

val of_file : string -> Grammar.t
(** Reads and parses a file; the grammar is named after the basename and
    locations cite the path. *)

val of_file_tolerant : string -> Grammar.t option * error list
(** {!of_string_tolerant} over a file's contents; errors carry the
    path in [file]. *)

val to_string : Grammar.t -> string
(** Prints a grammar back in the input format, such that
    [of_string (to_string g)] is structurally equal to [g]. *)
