(** Context-free grammars, augmented and interned.

    Construction (via {!make} or the {!Builder} front ends) always
    augments the user grammar with

    {v production 0:   S' → start $ v}

    following the paper's convention: the end marker appears as an
    ordinary terminal transition out of the state reached on the start
    symbol, so [$] enters the look-ahead computation through [DR] with no
    special cases. *)

type assoc = Left | Right | Nonassoc

type loc = { file : string; line : int }
(** A source position. [line = 0] marks a synthetic location (grammars
    built in code — the suite, random generation — rather than read from
    a file); [file] then holds ["<name>"]. *)

val synthetic_loc : string -> loc
(** [synthetic_loc name] is [{ file = "<name>"; line = 0 }]. *)

val is_synthetic : loc -> bool

val pp_loc : Format.formatter -> loc -> unit
(** [file:line], or just [file] when synthetic. *)

type locinfo = {
  li_source : string;  (** file name shown in locations *)
  li_rules : int list;  (** line per rule, aligned with [~rules] *)
  li_tokens : (string * int) list;  (** line per declared terminal *)
  li_prec : int list;  (** line per precedence level, aligned with [?prec] *)
}
(** Side-channel for {!make}: source lines collected by a reader.
    Missing entries (or lines [<= 0]) fall back to synthetic. *)

type locations = {
  source : string;
  prod_locs : loc array;  (** per production id; index 0 is synthetic *)
  term_locs : loc array;  (** per terminal id; index 0 is synthetic *)
  prec_locs : loc array;  (** per precedence level, index [level-1] *)
}

type production = {
  id : int;
  lhs : int;  (** nonterminal id *)
  rhs : Symbol.t array;
  prec : (int * assoc) option;
      (** Precedence level used for conflict resolution: that of the
          rightmost terminal with declared precedence, unless overridden
          at construction time ([%prec]). *)
}

type t = private {
  name : string;
  terminal_names : string array;  (** index 0 is ["$"] *)
  nonterminal_names : string array;  (** index 0 is the augmented start *)
  productions : production array;  (** index 0 is [S' → start $] *)
  by_lhs : int array array;
      (** [by_lhs.(a)] lists ids of productions with lhs [a], ascending. *)
  start : int;  (** the user's start nonterminal id *)
  terminal_prec : (int * assoc) option array;
  locs : locations;
}

val make :
  ?name:string ->
  ?prec:(assoc * string list) list ->
  ?locs:locinfo ->
  terminals:string list ->
  start:string ->
  rules:(string * string list * string option) list ->
  unit ->
  t
(** [make ~terminals ~start ~rules ()] builds and augments a grammar.

    Nonterminals are the left-hand sides occurring in [rules]; any
    right-hand-side name that is neither a declared terminal nor a
    left-hand side is an error. Each rule is
    [(lhs, rhs_names, prec_override)] where [prec_override] names a
    terminal whose precedence the production inherits ([%prec]).
    [prec] lists precedence declarations from lowest to highest level,
    as in yacc's [%left]/[%right]/[%nonassoc].

    Raises [Invalid_argument] on: unknown symbols, duplicate terminal
    declarations, a terminal named ["$"] or used as an lhs, an unknown
    [start], or an empty rule set. *)

val n_terminals : t -> int
val n_nonterminals : t -> int
val n_productions : t -> int

val terminal_name : t -> int -> string
val nonterminal_name : t -> int -> string
val symbol_name : t -> Symbol.t -> string

val production : t -> int -> production
val productions_of : t -> int -> int array
(** Production ids with the given lhs. *)

val find_terminal : t -> string -> int option
val find_nonterminal : t -> string -> int option
val find_symbol : t -> string -> Symbol.t option

val rhs_length : t -> int -> int

(** {2 Source locations} *)

val source : t -> string
(** The file the grammar was read from, or ["<name>"] when synthetic. *)

val production_loc : t -> int -> loc
val terminal_loc : t -> int -> loc

val prec_level_loc : t -> int -> loc
(** Location of the declaration line of a precedence {e level} (as
    stored in [terminal_prec], levels start at 1). Synthetic when out of
    range. *)

val nonterminal_loc : t -> int -> loc
(** Location of the nonterminal's first (user) production; synthetic
    for the augmented start. *)

val symbols_count : t -> int
(** Total grammar size |G| = Σ (1 + |rhs|) over all productions — the
    size measure used in the paper's complexity discussion. *)

val pp_production : t -> Format.formatter -> production -> unit
(** [lhs → x y z] using symbol names; empty rhs prints [ε]. *)

val pp_item : t -> Format.formatter -> int -> int -> unit
(** [pp_item g ppf prod dot] prints the dotted production
    [lhs → x . y z]. *)

val pp : Format.formatter -> t -> unit
(** Full listing: terminals, precedences, productions. *)

val equal_structure : t -> t -> bool
(** Same symbol tables and productions (ignores [name]). *)

val digest : t -> string
(** A 32-character hex content digest of the grammar's structure:
    symbol tables, productions and precedence declarations. Excludes
    [name] and source locations, so structurally equal grammars —
    including a grammar rehydrated from the artifact store
    ({!Lalr_store.Store}) — digest identically:
    [equal_structure a b] implies [digest a = digest b]. Caches keyed
    by this digest (the store, the counterexample yield memo) therefore
    survive rehydration, which physical-equality keys do not. *)
