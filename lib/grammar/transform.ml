(* Transformations rebuild the grammar through Grammar.make from symbol
   names, so all invariants (augmentation, precedence resolution) are
   re-established by construction. *)

let prec_declarations (g : Grammar.t) =
  (* Recover [%left]/[%right]/[%nonassoc] lines from terminal_prec. *)
  let levels = Hashtbl.create 8 in
  Array.iteri
    (fun t prec ->
      match prec with
      | Some (level, a) ->
          let _, ts =
            Option.value (Hashtbl.find_opt levels level) ~default:(a, [])
          in
          Hashtbl.replace levels level (a, t :: ts)
      | None -> ())
    g.terminal_prec;
  Hashtbl.fold (fun level la acc -> (level, la) :: acc) levels []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map (fun (_, (a, ts)) ->
         (a, List.rev_map (Grammar.terminal_name g) ts))

let user_terminals (g : Grammar.t) =
  List.init (Grammar.n_terminals g - 1) (fun i ->
      Grammar.terminal_name g (i + 1))

(* Rebuild from a subset of user productions (given as ids).
   [rule_lines] (aligned with [rule_list]) carries the original
   locations across the rebuild; token and precedence locations are
   copied wholesale since both are preserved verbatim. *)
let rebuild (g : Grammar.t) ?(rule_lines = []) rule_list =
  let locs =
    {
      Grammar.li_source = Grammar.source g;
      li_rules = rule_lines;
      li_tokens =
        List.map
          (fun t ->
            match Grammar.find_terminal g t with
            | Some i -> (t, (Grammar.terminal_loc g i).Grammar.line)
            | None -> (t, 0))
          (user_terminals g);
      li_prec =
        List.mapi
          (fun i _ -> (Grammar.prec_level_loc g (i + 1)).Grammar.line)
          (prec_declarations g);
    }
  in
  Grammar.make ~name:g.name ~locs ~prec:(prec_declarations g)
    ~terminals:(user_terminals g)
    ~start:(Grammar.nonterminal_name g g.start)
    ~rules:rule_list ()

let rules_of_prod_ids (g : Grammar.t) ids =
  List.map
    (fun pid ->
      let p = Grammar.production g pid in
      ( Grammar.nonterminal_name g p.lhs,
        Array.to_list (Array.map (Grammar.symbol_name g) p.rhs),
        None ))
    ids

let lines_of_prod_ids (g : Grammar.t) ids =
  List.map (fun pid -> (Grammar.production_loc g pid).Grammar.line) ids

let reduce (g : Grammar.t) =
  let a = Analysis.compute g in
  if not (Analysis.productive a g.start) then
    invalid_arg
      (Printf.sprintf "Transform.reduce: grammar %s generates no string"
         g.name);
  (* Keep user productions whose symbols are all productive; then keep
     those reachable from the start in the surviving rule set. *)
  let productive_prods =
    Array.to_list g.productions
    |> List.filter (fun (p : Grammar.production) ->
           p.id <> 0
           && Analysis.productive a p.lhs
           && Array.for_all
                (function
                  | Symbol.T _ -> true
                  | Symbol.N n -> Analysis.productive a n)
                p.rhs)
    |> List.map (fun (p : Grammar.production) -> p.id)
  in
  let by_lhs = Hashtbl.create 32 in
  List.iter
    (fun pid ->
      let p = Grammar.production g pid in
      Hashtbl.replace by_lhs p.lhs
        (pid :: Option.value (Hashtbl.find_opt by_lhs p.lhs) ~default:[]))
    productive_prods;
  let reachable = Hashtbl.create 32 in
  let rec visit n =
    if not (Hashtbl.mem reachable n) then begin
      Hashtbl.replace reachable n ();
      List.iter
        (fun pid ->
          let p = Grammar.production g pid in
          Array.iter
            (function Symbol.N m -> visit m | Symbol.T _ -> ())
            p.rhs)
        (Option.value (Hashtbl.find_opt by_lhs n) ~default:[])
    end
  in
  visit g.start;
  let kept =
    List.filter
      (fun pid -> Hashtbl.mem reachable (Grammar.production g pid).lhs)
      productive_prods
  in
  rebuild g ~rule_lines:(lines_of_prod_ids g kept) (rules_of_prod_ids g kept)

let reduce_opt (g : Grammar.t) =
  let a = Analysis.compute g in
  if Analysis.productive a g.start then Some (reduce g) else None

let eliminate_epsilon (g : Grammar.t) =
  let a = Analysis.compute g in
  let seen = Hashtbl.create 64 in
  let rules = ref [] in
  let add_rule lhs rhs =
    let key = (lhs, rhs) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      rules := (lhs, rhs, None) :: !rules
    end
  in
  Array.iter
    (fun (p : Grammar.production) ->
      if p.id <> 0 then begin
        let lhs = Grammar.nonterminal_name g p.lhs in
        (* Enumerate all subsets keeping/omitting nullable members. *)
        let rec expand i acc =
          if i = Array.length p.rhs then begin
            let rhs = List.rev acc in
            if rhs <> [] then add_rule lhs rhs
          end
          else
            let s = p.rhs.(i) in
            let keep () =
              expand (i + 1) (Grammar.symbol_name g s :: acc)
            in
            match s with
            | Symbol.T _ -> keep ()
            | Symbol.N n ->
                keep ();
                if Analysis.nullable a n then expand (i + 1) acc
        in
        expand 0 []
      end)
    g.productions;
  let rules = List.rev !rules in
  (* Nonterminals may have lost all their productions (pure-ε ones);
     dropping their uses is exactly what the expansion above did, but a
     start symbol with no rules is possible only if L(G) ⊆ {ε}. *)
  let has_start_rule =
    List.exists
      (fun (lhs, _, _) -> lhs = Grammar.nonterminal_name g g.start)
      rules
  in
  if not has_start_rule then
    invalid_arg
      "Transform.eliminate_epsilon: grammar generates only the empty string";
  (* Some rhs names may refer to nonterminals that no longer have rules;
     give them an impossible placeholder? No: such nonterminals derive
     only ε, so every occurrence was also expanded with the symbol
     omitted; drop the variants that still mention them. *)
  let defined = Hashtbl.create 32 in
  List.iter (fun (lhs, _, _) -> Hashtbl.replace defined lhs ()) rules;
  let is_dead name =
    Grammar.find_nonterminal g name <> None && not (Hashtbl.mem defined name)
  in
  let rules =
    List.filter
      (fun (_, rhs, _) -> not (List.exists is_dead rhs))
      rules
  in
  rebuild g rules

(* A ⇒+ A through unit-nullable chains: A derives B with everything else
   in the production nullable, transitively back to A. *)
let cyclic_nonterminals (g : Grammar.t) =
  let a = Analysis.compute g in
  let n = Grammar.n_nonterminals g in
  (* Edge A -> B iff A → αBβ with α, β nullable. *)
  let successors v =
    Array.to_list (Grammar.productions_of g v)
    |> List.concat_map (fun pid ->
           let p = Grammar.production g pid in
           let len = Array.length p.rhs in
           List.filteri (fun _ _ -> true)
             (List.concat
                (List.init len (fun i ->
                     match p.rhs.(i) with
                     | Symbol.T _ -> []
                     | Symbol.N b ->
                         if
                           Analysis.nullable_sentence a p.rhs ~from:0 ~upto:i
                           && Analysis.nullable_sentence a p.rhs ~from:(i + 1)
                                ~upto:len
                         then [ b ]
                         else []))))
  in
  Lalr_sets.Tarjan.nontrivial ~n ~successors |> List.concat |> List.sort_uniq Int.compare

let left_recursive_nonterminals (g : Grammar.t) =
  let a = Analysis.compute g in
  let n = Grammar.n_nonterminals g in
  (* Edge A -> B iff A → αBβ with α nullable. *)
  let successors v =
    Array.to_list (Grammar.productions_of g v)
    |> List.concat_map (fun pid ->
           let p = Grammar.production g pid in
           let rec collect i acc =
             if i = Array.length p.rhs then List.rev acc
             else
               match p.rhs.(i) with
               | Symbol.T _ -> List.rev acc
               | Symbol.N b ->
                   if Analysis.nullable a b then collect (i + 1) (b :: acc)
                   else List.rev (b :: acc)
           in
           collect 0 [])
  in
  Lalr_sets.Tarjan.nontrivial ~n ~successors |> List.concat |> List.sort_uniq Int.compare
