type error = {
  file : string option;
  line : int;
  col : int;
  message : string;
}

exception Error of error

let pp_error ppf e =
  match e.file with
  | Some f -> Format.fprintf ppf "%s:%d:%d: %s" f e.line e.col e.message
  | None -> Format.fprintf ppf "%d:%d: %s" e.line e.col e.message

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string
  | QUOTED of string  (* '+' or "+" : an implicitly declared terminal *)
  | COLON
  | SEMI
  | PIPE
  | SEPARATOR  (* %% *)
  | KW_TOKEN
  | KW_START
  | KW_LEFT
  | KW_RIGHT
  | KW_NONASSOC
  | KW_PREC
  | KW_EMPTY
  | EOF

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | QUOTED s -> Printf.sprintf "quoted terminal %S" s
  | COLON -> "':'"
  | SEMI -> "';'"
  | PIPE -> "'|'"
  | SEPARATOR -> "'%%'"
  | KW_TOKEN -> "'%token'"
  | KW_START -> "'%start'"
  | KW_LEFT -> "'%left'"
  | KW_RIGHT -> "'%right'"
  | KW_NONASSOC -> "'%nonassoc'"
  | KW_PREC -> "'%prec'"
  | KW_EMPTY -> "'%empty'"
  | EOF -> "end of input"

type lexer = {
  src : string;
  file : string option;  (* reported in errors; None for string input *)
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let lexer_error lx message =
  raise
    (Error { file = lx.file; line = lx.line; col = lx.pos - lx.bol + 1; message })

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
  | _ -> ());
  lx.pos <- lx.pos + 1

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let rec skip_space lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_space lx
  | Some '/' when lx.pos + 1 < String.length lx.src -> (
      match lx.src.[lx.pos + 1] with
      | '/' ->
          while peek_char lx <> None && peek_char lx <> Some '\n' do
            advance lx
          done;
          skip_space lx
      | '*' ->
          advance lx;
          advance lx;
          let rec go () =
            match peek_char lx with
            | None -> lexer_error lx "unterminated comment"
            | Some '*' when lx.pos + 1 < String.length lx.src
                            && lx.src.[lx.pos + 1] = '/' ->
                advance lx;
                advance lx
            | Some _ ->
                advance lx;
                go ()
          in
          go ();
          skip_space lx
      | _ -> ())
  | _ -> ()

(* A token together with the position where it starts. *)
type ptoken = { tok : token; tline : int; tcol : int }

let next_token lx =
  skip_space lx;
  let tline = lx.line and tcol = lx.pos - lx.bol + 1 in
  let mk tok = { tok; tline; tcol } in
  match peek_char lx with
  | None -> mk EOF
  | Some ':' ->
      advance lx;
      mk COLON
  | Some ';' ->
      advance lx;
      mk SEMI
  | Some '|' ->
      advance lx;
      mk PIPE
  | Some ('\'' | '"') ->
      let quote = Option.get (peek_char lx) in
      advance lx;
      let buf = Buffer.create 8 in
      let rec go () =
        match peek_char lx with
        | None | Some '\n' -> lexer_error lx "unterminated quoted terminal"
        | Some c when c = quote ->
            advance lx;
            if Buffer.length buf = 0 then
              lexer_error lx "empty quoted terminal"
        | Some c ->
            Buffer.add_char buf c;
            advance lx;
            go ()
      in
      go ();
      mk (QUOTED (Buffer.contents buf))
  | Some '%' -> (
      advance lx;
      match peek_char lx with
      | Some '%' ->
          advance lx;
          mk SEPARATOR
      | Some c when is_ident_start c ->
          let start = lx.pos in
          while
            match peek_char lx with
            | Some c -> is_ident_char c
            | None -> false
          do
            advance lx
          done;
          let kw = String.sub lx.src start (lx.pos - start) in
          mk
            (match kw with
            | "token" -> KW_TOKEN
            | "start" -> KW_START
            | "left" -> KW_LEFT
            | "right" -> KW_RIGHT
            | "nonassoc" -> KW_NONASSOC
            | "prec" -> KW_PREC
            | "empty" -> KW_EMPTY
            | _ -> lexer_error lx (Printf.sprintf "unknown directive %%%s" kw))
      | _ -> lexer_error lx "stray '%'")
  | Some c when is_ident_start c || is_digit c ->
      let start = lx.pos in
      while
        match peek_char lx with Some c -> is_ident_char c | None -> false
      do
        advance lx
      done;
      mk (IDENT (String.sub lx.src start (lx.pos - start)))
  | Some c -> lexer_error lx (Printf.sprintf "unexpected character %C" c)

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = {
  lx : lexer;
  mutable cur : ptoken;
  strict : bool;  (* raise on first error vs. collect and resynchronise *)
  mutable errors : error list;  (* reversed; tolerant mode only *)
}

(* Tolerant mode gives up after this many diagnostics: past that point
   the input is noise and further recovery only slows the caller down. *)
let max_errors = 100

exception Bail

(* Consecutive identical diagnostics collapse: a lexical error retried
   after the lexer consumed only whitespace reports once, not once per
   retry. *)
let record st e =
  match st.errors with
  | last :: _ when last = e -> ()
  | _ ->
      st.errors <- e :: st.errors;
      if List.length st.errors >= max_errors then raise Bail

let syntax_error st message =
  raise
    (Error
       { file = st.lx.file; line = st.cur.tline; col = st.cur.tcol; message })

(* In tolerant mode a lexical error is recorded and the lexer skips one
   character (when it has not already moved) before retrying, so
   progress is guaranteed. *)
let rec tolerant_next st =
  let before = st.lx.pos in
  match next_token st.lx with
  | t -> t
  | exception Error e ->
      record st e;
      if st.lx.pos = before && peek_char st.lx <> None then advance st.lx;
      if peek_char st.lx = None then
        { tok = EOF; tline = st.lx.line; tcol = st.lx.pos - st.lx.bol + 1 }
      else tolerant_next st

let shift st =
  st.cur <- (if st.strict then next_token st.lx else tolerant_next st)

let expect st tok what =
  if st.cur.tok = tok then shift st
  else
    syntax_error st
      (Printf.sprintf "expected %s but found %s" what
         (token_to_string st.cur.tok))

(* Accumulated declarations. Lines are kept alongside so the grammar's
   lint diagnostics can cite file:line. *)
type decls = {
  mutable tokens : (string * int) list;  (* (name, line), reversed *)
  mutable start : string option;
  mutable prec : (Grammar.assoc * string list) list;  (* reversed *)
  mutable prec_lines : int list;  (* reversed, aligned with prec *)
}

let ident_list st what =
  let rec go acc =
    match st.cur.tok with
    | IDENT s ->
        let line = st.cur.tline in
        shift st;
        go ((s, line) :: acc)
    | QUOTED s ->
        let line = st.cur.tline in
        shift st;
        go ((s, line) :: acc)
    | _ ->
        if acc = [] then
          syntax_error st
            (Printf.sprintf "expected at least one %s but found %s" what
               (token_to_string st.cur.tok));
        List.rev acc
  in
  go []

let parse_declarations st =
  let d = { tokens = []; start = None; prec = []; prec_lines = [] } in
  let prec_decl assoc =
    let line = st.cur.tline in
    shift st;
    d.prec <- (assoc, List.map fst (ident_list st "terminal")) :: d.prec;
    d.prec_lines <- line :: d.prec_lines
  in
  (* Tolerant resynchronisation: skip to the next declaration keyword,
     the rules separator, or end of input. *)
  let rec sync_decl () =
    match st.cur.tok with
    | KW_TOKEN | KW_START | KW_LEFT | KW_RIGHT | KW_NONASSOC | SEPARATOR
    | EOF ->
        ()
    | _ ->
        shift st;
        sync_decl ()
  in
  let rec go () =
    let next =
      try
        match st.cur.tok with
        | KW_TOKEN ->
            shift st;
            d.tokens <- List.rev_append (ident_list st "token name") d.tokens;
            `Continue
        | KW_START -> (
            shift st;
            match st.cur.tok with
            | IDENT s ->
                if d.start <> None then
                  syntax_error st "duplicate %start declaration";
                d.start <- Some s;
                shift st;
                `Continue
            | _ -> syntax_error st "expected a nonterminal name after %start")
        | KW_LEFT ->
            prec_decl Grammar.Left;
            `Continue
        | KW_RIGHT ->
            prec_decl Grammar.Right;
            `Continue
        | KW_NONASSOC ->
            prec_decl Grammar.Nonassoc;
            `Continue
        | SEPARATOR ->
            shift st;
            `Stop
        | EOF when not st.strict ->
            (* Missing '%%' altogether: diagnose once and move on. *)
            record st
              {
                file = st.lx.file;
                line = st.cur.tline;
                col = st.cur.tcol;
                message = "expected a declaration or '%%' but found end of input";
              };
            `Stop
        | _ ->
            syntax_error st
              (Printf.sprintf "expected a declaration or '%%%%' but found %s"
                 (token_to_string st.cur.tok))
      with Error e when not st.strict ->
        record st e;
        sync_decl ();
        if st.cur.tok = SEPARATOR then begin
          shift st;
          `Stop
        end
        else if st.cur.tok = EOF then `Stop
        else `Continue
    in
    match next with `Continue -> go () | `Stop -> ()
  in
  go ();
  d

(* Quoted terminals are implicitly declared; collect them during rule
   parsing so Grammar.make sees a complete terminal list. *)
let parse_rules st d =
  let implicit : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let declared = Hashtbl.create 16 in
  List.iter (fun (t, _) -> Hashtbl.replace declared t ()) d.tokens;
  let note_quoted s line =
    if not (Hashtbl.mem declared s || Hashtbl.mem implicit s) then
      Hashtbl.replace implicit s line
  in
  let rules = ref [] in
  let rule_lines = ref [] in
  let parse_alternative lhs =
    let alt_line = st.cur.tline in
    let rhs = ref [] in
    let prec_override = ref None in
    let rec go () =
      match st.cur.tok with
      | IDENT s ->
          shift st;
          rhs := s :: !rhs;
          go ()
      | QUOTED s ->
          note_quoted s st.cur.tline;
          shift st;
          rhs := s :: !rhs;
          go ()
      | KW_EMPTY ->
          shift st;
          if !rhs <> [] then
            syntax_error st "%empty must be the whole alternative";
          (match st.cur.tok with
          | PIPE | SEMI -> ()
          | _ -> syntax_error st "%empty must be the whole alternative")
      | KW_PREC -> (
          shift st;
          match st.cur.tok with
          | IDENT s | QUOTED s ->
              if !prec_override <> None then
                syntax_error st "duplicate %prec";
              prec_override := Some s;
              shift st;
              go ()
          | _ -> syntax_error st "expected a terminal after %prec")
      | PIPE | SEMI -> ()
      | _ ->
          syntax_error st
            (Printf.sprintf "unexpected %s in production"
               (token_to_string st.cur.tok))
    in
    go ();
    rules := (lhs, List.rev !rhs, !prec_override) :: !rules;
    rule_lines := alt_line :: !rule_lines
  in
  let parse_rule () =
    match st.cur.tok with
    | IDENT lhs ->
        shift st;
        expect st COLON "':' after rule name";
        parse_alternative lhs;
        while st.cur.tok = PIPE do
          shift st;
          parse_alternative lhs
        done;
        expect st SEMI "';' at end of rule"
    | _ ->
        syntax_error st
          (Printf.sprintf "expected a rule name but found %s"
             (token_to_string st.cur.tok))
  in
  (* Tolerant resynchronisation: skip past the next ';' (the end of the
     broken rule), or stop at end of input. *)
  let rec sync_rule () =
    match st.cur.tok with
    | EOF -> ()
    | SEMI -> shift st
    | _ ->
        shift st;
        sync_rule ()
  in
  let parse_rule () =
    if st.strict then parse_rule ()
    else
      try parse_rule () with
      | Error e ->
          record st e;
          sync_rule ()
  in
  parse_rule ();
  while st.cur.tok <> EOF do
    parse_rule ()
  done;
  let implicit_tokens =
    Hashtbl.fold (fun s line acc -> (s, line) :: acc) implicit []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (List.rev !rules, List.rev !rule_lines, implicit_tokens)

let parse_with ~strict ~name ~source src =
  let lx = { src; file = source; pos = 0; line = 1; bol = 0 } in
  let st =
    { lx; cur = { tok = EOF; tline = 1; tcol = 1 }; strict; errors = [] }
  in
  let build () =
    shift st;
    let d = parse_declarations st in
    (* Where the rules section starts: the position cited when it turns
       out to be empty. *)
    let rules_line = st.cur.tline and rules_col = st.cur.tcol in
    let rules, rule_lines, implicit = parse_rules st d in
    if rules = [] then
      raise
        (Error
           {
             file = source;
             line = rules_line;
             col = rules_col;
             message = "no rules";
           });
    let start =
      match d.start with
      | Some s -> s
      | None -> (
          match rules with (lhs, _, _) :: _ -> lhs | [] -> assert false)
    in
    let tokens = List.rev d.tokens @ implicit in
    let locs =
      {
        Grammar.li_source = Option.value source ~default:("<" ^ name ^ ">");
        li_rules = rule_lines;
        li_tokens = tokens;
        li_prec = List.rev d.prec_lines;
      }
    in
    Grammar.make ~name ~locs
      ~prec:(List.rev d.prec)
      ~terminals:(List.map fst tokens)
      ~start ~rules ()
  in
  (st, build)

let of_string ?(name = "grammar") ?source src =
  let _, build = parse_with ~strict:true ~name ~source src in
  build ()

let injected_corruption source =
  {
    file = source;
    line = 1;
    col = 1;
    message = "injected corruption (fault injection)";
  }

let of_string_tolerant ?(name = "grammar") ?source src =
  Lalr_trace.Trace.with_span "reader.yacc" @@ fun () ->
  Lalr_guard.Faultpoint.check "reader";
  if Lalr_guard.Faultpoint.take_corrupt "reader" then
    (None, [ injected_corruption source ])
  else
  let st, build = parse_with ~strict:false ~name ~source src in
  match build () with
  | g -> (Some g, List.rev st.errors)
  | exception Error e -> (None, List.rev (e :: st.errors))
  | exception Bail -> (None, List.rev st.errors)
  | exception Invalid_argument msg ->
      (* Semantic errors from Grammar.make carry no position. *)
      let e = { file = source; line = 1; col = 1; message = msg } in
      (None, List.rev (e :: st.errors))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let of_file path =
  of_string
    ~name:(Filename.remove_extension (Filename.basename path))
    ~source:path (read_file path)

let of_file_tolerant path =
  of_string_tolerant
    ~name:(Filename.remove_extension (Filename.basename path))
    ~source:path (read_file path)

(* ------------------------------------------------------------------ *)
(* Printer (round-trips through of_string)                            *)
(* ------------------------------------------------------------------ *)

let needs_quoting s =
  not (String.length s > 0 && is_ident_start s.[0]
       && String.for_all is_ident_char s)

let print_symbol_name s =
  if needs_quoting s then Printf.sprintf "%S" s else s

let to_string (g : Grammar.t) =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add "%token";
  for t = 1 to Grammar.n_terminals g - 1 do
    add " ";
    add (print_symbol_name (Grammar.terminal_name g t))
  done;
  add "\n";
  (* Precedence levels: group terminals by (level, assoc), ascending. *)
  let levels = Hashtbl.create 8 in
  Array.iteri
    (fun t prec ->
      match prec with
      | Some (level, a) ->
          let existing =
            Option.value (Hashtbl.find_opt levels level) ~default:(a, [])
          in
          Hashtbl.replace levels level (a, t :: snd existing)
      | None -> ())
    g.terminal_prec;
  let sorted =
    Hashtbl.fold (fun level la acc -> (level, la) :: acc) levels []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (_, (assoc, ts)) ->
      add
        (match assoc with
        | Grammar.Left -> "%left"
        | Grammar.Right -> "%right"
        | Grammar.Nonassoc -> "%nonassoc");
      List.iter
        (fun t ->
          add " ";
          add (print_symbol_name (Grammar.terminal_name g t)))
        (List.rev ts);
      add "\n")
    sorted;
  add ("%start " ^ Grammar.nonterminal_name g g.start ^ "\n%%\n");
  (* Productions grouped by lhs, skipping the augmented production 0. *)
  for n = 1 to Grammar.n_nonterminals g - 1 do
    let prods = Grammar.productions_of g n in
    if Array.length prods > 0 then begin
      add (Grammar.nonterminal_name g n);
      add " :";
      Array.iteri
        (fun i pid ->
          if i > 0 then add "\n  |";
          let p = Grammar.production g pid in
          if Array.length p.rhs = 0 then add " %empty"
          else
            Array.iter
              (fun s ->
                add " ";
                add (print_symbol_name (Grammar.symbol_name g s)))
              p.rhs)
        prods;
      add " ;\n"
    end
  done;
  Buffer.contents buf
