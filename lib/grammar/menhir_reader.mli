(** Reader for (a useful subset of) Menhir's [.mly] format, so grammars
    written for Menhir or ocamlyacc can be analysed directly.

    Supported:
    - [%token] declarations, with or without [<ocaml type>] payloads;
    - [%left] / [%right] / [%nonassoc] (lowest level first, as in yacc);
    - [%start] (the [<type>] annotation is accepted and ignored);
    - [%type] and [%on_error_reduce] declarations (ignored);
    - rules in the old syntax: [name: prod | prod ...] with an optional
      trailing [;]; empty productions; [%prec TOKEN];
    - semantic actions [{ ... }] with arbitrary nesting (skipped);
    - producer bindings [x = symbol] (the binding is dropped);
    - OCaml headers [%{ ... %}] (skipped) and comments [(* ... *)],
      [/* ... */] and [//].

    Not supported (rejected with a clear error): parameterised rules
    [rule(X)], [%inline], the new [let]-syntax, and the standard-library
    shorthands [symbol?], [symbol+], [symbol*], [separated_list(...)].

    If every production of the start symbol ends with the same terminal
    and that terminal occurs nowhere else (the conventional explicit
    [EOF]), it is stripped: this library's grammars are implicitly
    augmented with an end marker already (see {!Grammar.make}). *)

val of_string : ?name:string -> ?source:string -> string -> Grammar.t
(** Raises {!Reader.Error} on lexical/syntax errors and
    [Invalid_argument] on semantic ones. [source] is recorded in the
    grammar's {!Grammar.locations} together with per-production and
    per-declaration line numbers. *)

val of_string_tolerant :
  ?name:string -> ?source:string -> string -> Grammar.t option * Reader.error list
(** Error-recovering variant of {!of_string}: never raises on malformed
    input. Syntax errors resynchronise at the next declaration keyword,
    ['%%'] or [';'] and parsing continues, so one call collects every
    diagnostic (capped at 100); lexical errors skip a character. See
    {!Reader.of_string_tolerant} for the contract. *)

val of_file : string -> Grammar.t

val of_file_tolerant : string -> Grammar.t option * Reader.error list
(** {!of_string_tolerant} over a file's contents; errors carry the path
    in [Reader.error.file]. *)
