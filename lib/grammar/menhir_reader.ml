(* A dedicated lexer/parser for the Menhir .mly subset. It shares the
   error type with Reader so callers handle one exception. *)

type lexer = {
  src : string;
  file : string option;  (* reported in errors; None for string input *)
  mutable pos : int;
  mutable line : int;
  mutable bol : int;
}

let error lx message =
  raise
    (Reader.Error
       { file = lx.file; line = lx.line; col = lx.pos - lx.bol + 1; message })

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
  | _ -> ());
  lx.pos <- lx.pos + 1

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

(* Skip whitespace, the three comment syntaxes, and OCaml-type
   annotations in angle brackets are handled at the token level. *)
let rec skip_space lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_space lx
  | Some '/' when peek2 lx = Some '/' ->
      while peek lx <> None && peek lx <> Some '\n' do
        advance lx
      done;
      skip_space lx
  | Some '/' when peek2 lx = Some '*' ->
      advance lx;
      advance lx;
      let rec go () =
        match (peek lx, peek2 lx) with
        | None, _ -> error lx "unterminated /* comment"
        | Some '*', Some '/' ->
            advance lx;
            advance lx
        | Some _, _ ->
            advance lx;
            go ()
      in
      go ();
      skip_space lx
  | Some '(' when peek2 lx = Some '*' ->
      advance lx;
      advance lx;
      (* OCaml comments nest. *)
      let depth = ref 1 in
      let rec go () =
        match (peek lx, peek2 lx) with
        | None, _ -> error lx "unterminated (* comment"
        | Some '(', Some '*' ->
            advance lx;
            advance lx;
            incr depth;
            go ()
        | Some '*', Some ')' ->
            advance lx;
            advance lx;
            decr depth;
            if !depth > 0 then go ()
        | Some _, _ ->
            advance lx;
            go ()
      in
      go ();
      skip_space lx
  | _ -> ()

let skip_braced lx =
  (* positioned on '{'; skips the balanced action, tolerating nested
     braces (strings inside actions with unbalanced braces are out of
     scope for this subset). *)
  let depth = ref 0 in
  let continue = ref true in
  while !continue do
    match peek lx with
    | None -> error lx "unterminated { action }"
    | Some '{' ->
        incr depth;
        advance lx
    | Some '}' ->
        decr depth;
        advance lx;
        if !depth = 0 then continue := false
    | Some _ -> advance lx
  done

let skip_angle lx =
  (* positioned on '<'; skips an OCaml type annotation to the matching
     '>'; nested angles can occur in functor paths rarely — handle
     flat. *)
  advance lx;
  let continue = ref true in
  while !continue do
    match peek lx with
    | None -> error lx "unterminated <type>"
    | Some '>' ->
        advance lx;
        continue := false
    | Some _ -> advance lx
  done

type token =
  | IDENT of string
  | COLON
  | SEMI
  | PIPE
  | EQUALS
  | SEPARATOR
  | KW of string  (* token, left, right, nonassoc, start, type, prec, ... *)
  | EOF_TOK

let rec next lx =
  skip_space lx;
  match peek lx with
  | None -> EOF_TOK
  | Some ':' ->
      advance lx;
      COLON
  | Some ';' ->
      advance lx;
      SEMI
  | Some '|' ->
      advance lx;
      PIPE
  | Some '=' ->
      advance lx;
      EQUALS
  | Some '{' ->
      skip_braced lx;
      next lx
  | Some '<' ->
      skip_angle lx;
      next lx
  | Some '%' -> (
      advance lx;
      match peek lx with
      | Some '%' ->
          advance lx;
          SEPARATOR
      | Some '{' ->
          (* OCaml header %{ ... %} *)
          advance lx;
          let rec go () =
            match (peek lx, peek2 lx) with
            | None, _ -> error lx "unterminated %{ header"
            | Some '%', Some '}' ->
                advance lx;
                advance lx
            | Some _, _ ->
                advance lx;
                go ()
          in
          go ();
          next lx
      | Some c when is_ident_start c ->
          let start = lx.pos in
          while
            match peek lx with Some c -> is_ident_char c | None -> false
          do
            advance lx
          done;
          KW (String.sub lx.src start (lx.pos - start))
      | _ -> error lx "stray '%'")
  | Some c when is_ident_start c ->
      let start = lx.pos in
      while match peek lx with Some c -> is_ident_char c | None -> false do
        advance lx
      done;
      IDENT (String.sub lx.src start (lx.pos - start))
  | Some ('(' | ')' | '?' | '+' | '*' | ',') ->
      error lx
        "parameterised rules and ?/+/* shorthands are not supported by this \
         subset"
  | Some c -> error lx (Printf.sprintf "unexpected character %C" c)

type state = {
  lx : lexer;
  mutable cur : token;
  strict : bool;
  errors : Reader.error list ref;  (* reversed; tolerant mode only *)
}

(* Tolerant mode gives up after this many diagnostics. *)
let max_errors = 100

(* Consecutive identical diagnostics collapse: a lexical error retried
   after the lexer consumed only whitespace reports once, not once per
   retry. *)
let record st e =
  match !(st.errors) with
  | last :: _ when last = e -> ()
  | _ ->
      st.errors := e :: !(st.errors);
      if List.length !(st.errors) >= max_errors then
        raise
          (Reader.Error { e with Reader.message = "too many errors; giving up" })

(* In tolerant mode a lexical error is recorded and the lexer skips one
   character (when it has not already moved) before retrying, so
   progress is guaranteed. *)
let rec tolerant_next st =
  let before = st.lx.pos in
  match next st.lx with
  | t -> t
  | exception Reader.Error e ->
      record st e;
      if st.lx.pos = before && peek st.lx <> None then advance st.lx;
      if peek st.lx = None then EOF_TOK else tolerant_next st

let shift st = st.cur <- (if st.strict then next st.lx else tolerant_next st)
let serr st message = error st.lx message

let make_state ~strict ~file src =
  let lx = { src; file; pos = 0; line = 1; bol = 0 } in
  { lx; cur = EOF_TOK; strict; errors = ref [] }

let parse st ~name ~source =
  let lx = st.lx in
  let strict = st.strict in
  shift st;
  let tokens = ref [] in
  let start = ref None in
  let prec = ref [] in
  (* Lines for locations. [lx.line] is the position just past the
     current token — right for a token lexed on its own line, at worst
     one line late at a boundary; good enough for diagnostics. *)
  let token_lines : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let prec_lines = ref [] in
  (* declarations *)
  let rec decls () =
    match st.cur with
    | KW "token" ->
        shift st;
        let rec names () =
          match st.cur with
          | IDENT s ->
              tokens := s :: !tokens;
              if not (Hashtbl.mem token_lines s) then
                Hashtbl.replace token_lines s lx.line;
              shift st;
              names ()
          | _ -> ()
        in
        names ();
        decls ()
    | KW (("left" | "right" | "nonassoc") as kw) ->
        let decl_line = lx.line in
        shift st;
        let assoc =
          match kw with
          | "left" -> Grammar.Left
          | "right" -> Grammar.Right
          | _ -> Grammar.Nonassoc
        in
        let rec names acc =
          match st.cur with
          | IDENT s ->
              shift st;
              names (s :: acc)
          | _ -> List.rev acc
        in
        prec := (assoc, names []) :: !prec;
        prec_lines := decl_line :: !prec_lines;
        decls ()
    | KW "start" -> (
        shift st;
        match st.cur with
        | IDENT s ->
            if !start = None then start := Some s;
            shift st;
            decls ()
        | _ -> serr st "expected a nonterminal after %start")
    | KW ("type" | "on_error_reduce") ->
        shift st;
        (* consume the symbols it mentions *)
        let rec names () =
          match st.cur with
          | IDENT _ ->
              shift st;
              names ()
          | _ -> ()
        in
        names ();
        decls ()
    | KW ("inline" | "parameter" | "public") ->
        serr st "%inline/%parameter rules are not supported by this subset"
    | KW other -> serr st (Printf.sprintf "unknown declaration %%%s" other)
    | SEPARATOR -> shift st
    | _ -> serr st "expected a declaration or '%%'"
  in
  (* Tolerant resynchronisation for declarations: drop the offending
     token, then resume at the next declaration keyword, the separator,
     or end of input. *)
  let rec decls_guard () =
    try decls () with
    | Reader.Error e when not strict ->
        record st e;
        let rec sync first =
          match st.cur with
          | SEPARATOR -> shift st
          | EOF_TOK -> ()
          | KW _ when not first -> decls_guard ()
          | _ ->
              shift st;
              sync false
        in
        sync true
  in
  decls_guard ();
  (* rules *)
  let rules = ref [] in
  let rule_lines = ref [] in
  let declared_tokens = Hashtbl.create 32 in
  List.iter (fun t -> Hashtbl.replace declared_tokens t ()) !tokens;
  (* Menhir does not require ';' between rules, so a production ends
     when an IDENT is immediately followed by ':' — that IDENT is the
     next rule's name. [parse_production] returns it when seen. *)
  let parse_production lhs =
    let prod_line = lx.line in
    let rhs = ref [] in
    let prec_override = ref None in
    let next_lhs = ref None in
    let rec go () =
      match st.cur with
      | IDENT s -> (
          shift st;
          match st.cur with
          | EQUALS -> (
              (* producer binding  x = symbol  *)
              shift st;
              match st.cur with
              | IDENT sym ->
                  shift st;
                  rhs := sym :: !rhs;
                  go ()
              | _ -> serr st "expected a symbol after '='")
          | COLON ->
              (* rule boundary: s was the next rule's name *)
              shift st;
              next_lhs := Some s
          | _ ->
              rhs := s :: !rhs;
              go ())
      | KW "prec" -> (
          shift st;
          match st.cur with
          | IDENT s ->
              prec_override := Some s;
              shift st;
              go ()
          | _ -> serr st "expected a terminal after %prec")
      | PIPE | SEMI | EOF_TOK -> ()
      | COLON ->
          serr st "unexpected ':' (parameterised or new-syntax rules?)"
      | _ -> serr st "unexpected token in production"
    in
    go ();
    rules := (lhs, List.rev !rhs, !prec_override) :: !rules;
    rule_lines := prod_line :: !rule_lines;
    !next_lhs
  in
  (* Parses one rule given its name (':' already consumed); returns the
     name of the next rule when the boundary was detected inline. *)
  let parse_rule_body lhs =
    (* leading | is allowed *)
    (match st.cur with PIPE -> shift st | _ -> ());
    let rec alts () =
      match parse_production lhs with
      | Some next -> Some next
      | None -> (
          match st.cur with
          | PIPE ->
              shift st;
              alts ()
          | SEMI ->
              shift st;
              None
          | _ -> None)
    in
    alts ()
  in
  let parse_first_rule () =
    match st.cur with
    | IDENT lhs -> (
        shift st;
        match st.cur with
        | COLON ->
            shift st;
            parse_rule_body lhs
        | _ -> serr st "expected ':' after rule name")
    | _ -> serr st "expected a rule"
  in
  let carried = ref None in
  let continue = ref true in
  let first = ref true in
  let step () =
    if !first then begin
      first := false;
      if st.cur = EOF_TOK then serr st "no rules";
      carried := parse_first_rule ()
    end
    else
      match !carried with
      | Some lhs -> carried := parse_rule_body lhs
      | None ->
          if st.cur = EOF_TOK || st.cur = SEPARATOR then continue := false
          else carried := parse_first_rule ()
  in
  (* Tolerant resynchronisation for rules: past the next ';', or stop
     at the trailer/end of input. *)
  let rec sync_rule () =
    match st.cur with
    | EOF_TOK | SEPARATOR -> continue := false
    | SEMI -> shift st
    | _ ->
        shift st;
        sync_rule ()
  in
  while !continue do
    if strict then step ()
    else
      try step () with
      | Reader.Error e ->
          record st e;
          carried := None;
          sync_rule ()
  done;
  let rules = List.rev !rules in
  let rule_lines = List.rev !rule_lines in
  let no_rules () =
    raise
      (Reader.Error
         {
           file = source;
           line = lx.line;
           col = lx.pos - lx.bol + 1;
           message = "no rules";
         })
  in
  if rules = [] then no_rules ();
  let start =
    match !start with
    | Some s -> s
    | None -> ( match rules with (lhs, _, _) :: _ -> lhs | [] -> no_rules ())
  in
  (* Strip a conventional explicit EOF: a terminal that ends every
     start production and occurs nowhere else. *)
  let ends_all_start_rules t =
    let start_rules = List.filter (fun (l, _, _) -> l = start) rules in
    start_rules <> []
    && List.for_all
         (fun (_, rhs, _) ->
           match List.rev rhs with last :: _ -> last = t | [] -> false)
         start_rules
  in
  let occurrences t =
    List.fold_left
      (fun acc (_, rhs, _) ->
        acc + List.length (List.filter (fun s -> s = t) rhs))
      0 rules
  in
  let eof_candidates =
    List.filter
      (fun t ->
        ends_all_start_rules t
        && occurrences t
           = List.length (List.filter (fun (l, _, _) -> l = start) rules))
      !tokens
  in
  let rules, tokens =
    match eof_candidates with
    | t :: _ ->
        ( List.map
            (fun (l, rhs, p) ->
              if l = start then
                match List.rev rhs with
                | last :: rev_rest when last = t -> (l, List.rev rev_rest, p)
                | _ -> (l, rhs, p)
              else (l, rhs, p))
            rules,
          List.filter (fun tok -> tok <> t) (List.rev !tokens) )
    | [] -> (rules, List.rev !tokens)
  in
  let locs =
    {
      Grammar.li_source = Option.value source ~default:("<" ^ name ^ ">");
      li_rules = rule_lines;
      li_tokens =
        List.map
          (fun t ->
            (t, Option.value (Hashtbl.find_opt token_lines t) ~default:0))
          tokens;
      li_prec = List.rev !prec_lines;
    }
  in
  Grammar.make ~name ~locs ~prec:(List.rev !prec) ~terminals:tokens ~start
    ~rules ()

let of_string ?(name = "grammar") ?source src =
  parse (make_state ~strict:true ~file:source src) ~name ~source

let of_string_tolerant ?(name = "grammar") ?source src =
  Lalr_trace.Trace.with_span "reader.menhir" @@ fun () ->
  Lalr_guard.Faultpoint.check "menhir";
  if Lalr_guard.Faultpoint.take_corrupt "menhir" then
    ( None,
      [
        {
          Reader.file = source;
          line = 1;
          col = 1;
          message = "injected corruption (fault injection)";
        };
      ] )
  else
  let st = make_state ~strict:false ~file:source src in
  let finish extra =
    let errs =
      match extra with None -> !(st.errors) | Some e -> e :: !(st.errors)
    in
    (* The final raise may repeat an already-recorded diagnostic. *)
    let deduped =
      List.fold_left
        (fun acc e ->
          match acc with prev :: _ when prev = e -> acc | _ -> e :: acc)
        [] (List.rev errs)
    in
    List.rev deduped
  in
  match parse st ~name ~source with
  | g -> (Some g, finish None)
  | exception Reader.Error e -> (None, finish (Some e))
  | exception Invalid_argument msg ->
      (* Semantic errors from Grammar.make carry no position. *)
      ( None,
        finish
          (Some { Reader.file = source; line = 1; col = 1; message = msg }) )

let of_file path =
  let src = Reader.read_file path in
  of_string
    ~name:(Filename.remove_extension (Filename.basename path))
    ~source:path src

let of_file_tolerant path =
  let src = Reader.read_file path in
  of_string_tolerant
    ~name:(Filename.remove_extension (Filename.basename path))
    ~source:path src
