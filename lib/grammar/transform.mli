(** Grammar transformations.

    The LR constructions assume a reduced grammar (every nonterminal
    productive and reachable); {!reduce} establishes that. The remaining
    transformations are standard normalisations, useful when preparing
    third-party grammars for the benchmark suite. All transformations
    preserve terminal names and precedence declarations. *)

val reduce : Grammar.t -> Grammar.t
(** Removes unproductive nonterminals, then unreachable symbols (in that
    order — reachability must be recomputed after dropping unproductive
    rules). Raises [Invalid_argument] if the start symbol itself is
    unproductive, i.e. the grammar generates no terminal string. Returns
    a structurally equal grammar when already reduced. *)

val reduce_opt : Grammar.t -> Grammar.t option
(** Non-raising {!reduce}: [None] when the start symbol is
    unproductive. *)

val eliminate_epsilon : Grammar.t -> Grammar.t
(** Returns a grammar without ε-productions generating [L(G) \ {ε}]:
    for every production, all variants obtained by omitting nullable
    members are added, minus duplicates and minus new ε-productions. *)

val cyclic_nonterminals : Grammar.t -> int list
(** Nonterminals [A] with a derivation [A ⇒+ A]. A grammar containing
    such a cycle is ambiguous and not LR(k) for any k. *)

val left_recursive_nonterminals : Grammar.t -> int list
(** Nonterminals [A] with [A ⇒+ Aα]. Harmless for LR, fatal for LL —
    reported by the CLI for grammar hygiene. *)
