module Kstring = Lalr_sets.Kstring
module KSet = Kstring.Set
module Budget = Lalr_guard.Budget

type t = { k : int; grammar : Grammar.t; first : KSet.t array }

let k t = t.k
let grammar t = t.grammar
let nonterminal t n = t.first.(n)

let sentence_sets ~k first (rhs : Symbol.t array) ~from =
  (* FIRSTk(rhs.(from..)) = FIRSTk(s_from) ⊕k ... ⊕k FIRSTk(s_last),
     folding left with early exit once every string reaches length k. *)
  let n = Array.length rhs in
  let rec go i acc =
    if i >= n then acc
    else if KSet.for_all (fun s -> List.length s >= k) acc then acc
    else
      let next =
        match rhs.(i) with
        | Symbol.T t -> KSet.singleton [ t ]
        | Symbol.N m -> first.(m)
      in
      go (i + 1) (Kstring.concat_sets k acc next)
  in
  go from Kstring.epsilon

let compute ~k (g : Grammar.t) =
  if k < 0 then invalid_arg "Firstk.compute: negative k";
  let n_nt = Grammar.n_nonterminals g in
  let first = Array.make n_nt KSet.empty in
  if k = 0 then
    (* FIRST0 of anything is {ε}. *)
    Array.iteri (fun i _ -> first.(i) <- Kstring.epsilon) first
  else begin
    let partial () =
      Printf.sprintf "FIRST%d fixpoint in progress over %d nonterminals" k n_nt
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun (p : Grammar.production) ->
          Budget.burn ();
          (* Concatenate current approximations along the rhs. Only
             symbols whose FIRSTk is still empty block the production
             entirely (no string derivable yet). *)
          let blocked =
            Array.exists
              (function
                | Symbol.T _ -> false
                | Symbol.N m -> KSet.is_empty first.(m))
              p.rhs
          in
          if not blocked then begin
            let set = sentence_sets ~k first p.rhs ~from:0 in
            let merged = KSet.union first.(p.lhs) set in
            if not (KSet.equal merged first.(p.lhs)) then begin
              Budget.count_items ~partial
                (KSet.cardinal merged - KSet.cardinal first.(p.lhs));
              first.(p.lhs) <- merged;
              changed := true
            end
          end)
        g.productions
    done
  end;
  { k; grammar = g; first }

let sentence t rhs ~from = sentence_sets ~k:t.k t.first rhs ~from
