module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Slr = Lalr_baselines.Slr
module Lr1 = Lalr_baselines.Lr1
module Nqlalr = Lalr_baselines.Nqlalr

type verdict = {
  lr0 : bool;
  slr1 : bool;
  lalr1 : bool;
  lr1 : bool;
  nqlalr1 : bool;
  not_lr_k : bool;
  lr0_states : int;
  lr1_states : int;
  lalr_sr_conflicts : int;
  lalr_rr_conflicts : int;
  slr_sr_conflicts : int;
  slr_rr_conflicts : int;
  nq_sr_conflicts : int;
  nq_rr_conflicts : int;
}

let assemble ~lalr ~slr ~nqlalr ~lalr_tbl ~slr_tbl ~nq_tbl ~lr1 a =
  let lalr1 = Lalr.is_lalr1 lalr in
  let not_lr_k =
    List.exists
      (function Lalr.Reads_cycle _ -> true | Lalr.Includes_cycle _ -> false)
      (Lalr.diagnostics lalr)
  in
  let lr1, lr1_states =
    match lr1 with
    | Some c -> (Lr1.is_lr1 c, Lr1.n_states c)
    | None -> (lalr1, 0)
  in
  {
    lr0 = Lr0.n_conflict_free_lr0 a;
    slr1 = Slr.is_slr1 slr;
    lalr1;
    lr1;
    nqlalr1 = Nqlalr.is_nqlalr1 nqlalr;
    not_lr_k;
    lr0_states = Lr0.n_states a;
    lr1_states;
    lalr_sr_conflicts = Tables.n_shift_reduce lalr_tbl;
    lalr_rr_conflicts = Tables.n_reduce_reduce lalr_tbl;
    slr_sr_conflicts = Tables.n_shift_reduce slr_tbl;
    slr_rr_conflicts = Tables.n_reduce_reduce slr_tbl;
    nq_sr_conflicts = Tables.n_shift_reduce nq_tbl;
    nq_rr_conflicts = Tables.n_reduce_reduce nq_tbl;
  }

let classify_common ~with_lr1 g =
  let a = Lr0.build g in
  let lalr = Lalr.compute a in
  let slr = Slr.compute a in
  let nqlalr = Nqlalr.compute a in
  let lalr_tbl = Tables.build ~lookahead:(Lalr.lookahead lalr) a in
  let slr_tbl = Tables.build ~lookahead:(Slr.lookahead slr) a in
  let nq_tbl = Tables.build ~lookahead:(Nqlalr.lookahead nqlalr) a in
  let lr1 = if with_lr1 then Some (Lr1.build g) else None in
  assemble ~lalr ~slr ~nqlalr ~lalr_tbl ~slr_tbl ~nq_tbl ~lr1 a

let classify g = classify_common ~with_lr1:true g
let classify_no_lr1 g = classify_common ~with_lr1:false g

let pp ppf v =
  let cls =
    if v.lr0 then "LR(0)"
    else if v.slr1 then "SLR(1) (not LR(0))"
    else if v.lalr1 then "LALR(1) (not SLR(1))"
    else if v.lr1 then "LR(1) (not LALR(1))"
    else if v.not_lr_k then "not LR(k) for any k (reads cycle)"
    else "not LR(1)"
  in
  Format.fprintf ppf "%s; LR(0) states %d" cls v.lr0_states;
  if v.lr1_states > 0 then Format.fprintf ppf ", LR(1) states %d" v.lr1_states;
  if v.lalr1 && not v.nqlalr1 then
    Format.fprintf ppf "; NQLALR reports spurious conflicts (%d s/r, %d r/r)"
      v.nq_sr_conflicts v.nq_rr_conflicts
