(** Grammar classification in the LR hierarchy.

    Runs the whole tool-chest over one grammar and reports where it
    falls in LR(0) ⊂ SLR(1) ⊂ LALR(1) ⊂ LR(1), together with the
    paper's diagnostics (a [reads] cycle proves the grammar is not LR(k)
    for any k). This powers experiment T5 and the CLI's [classify]
    command. *)

type verdict = {
  lr0 : bool;
  slr1 : bool;
  lalr1 : bool;
  lr1 : bool;
  nqlalr1 : bool;
      (** conflict-free under the NQLALR approximation; [lalr1 &&
          not nqlalr1] exhibits the paper's §7 complaint *)
  not_lr_k : bool;  (** a [reads] cycle exists: not LR(k) for any k *)
  lr0_states : int;
  lr1_states : int;
  lalr_sr_conflicts : int;  (** unresolved, under exact LALR(1) sets *)
  lalr_rr_conflicts : int;
  slr_sr_conflicts : int;
  slr_rr_conflicts : int;
  nq_sr_conflicts : int;
  nq_rr_conflicts : int;
}

val assemble :
  lalr:Lalr_core.Lalr.t ->
  slr:Lalr_baselines.Slr.t ->
  nqlalr:Lalr_baselines.Nqlalr.t ->
  lalr_tbl:Tables.t ->
  slr_tbl:Tables.t ->
  nq_tbl:Tables.t ->
  lr1:Lalr_baselines.Lr1.t option ->
  Lalr_automaton.Lr0.t ->
  verdict
(** Builds a verdict from precomputed artifacts (all for the same
    grammar and LR(0) automaton). [lr1 = None] behaves like
    {!classify_no_lr1}. This is how the memoizing engine classifies
    without recomputing any layer; {!classify}/{!classify_no_lr1} are
    the from-scratch wrappers. *)

val classify : Grammar.t -> verdict
(** Builds the LR(0) and LR(1) automata and all look-ahead variants.
    Expensive on large grammars (canonical LR(1) dominates). *)

val classify_no_lr1 : Grammar.t -> verdict
(** Same but skips the canonical LR(1) construction; [lr1] is
    over-approximated as [lalr1 || not not_lr_k] — reported as [lalr1]
    — and [lr1_states] is [0]. For very large grammars. *)

val pp : Format.formatter -> verdict -> unit
(** One-line summary, e.g. ["LALR(1) (not SLR(1)); LR(0) states 131, LR(1) states 458"]. *)
