module Vec = Lalr_sets.Vec
module Budget = Lalr_guard.Budget

type state = {
  id : int;
  kernel : int array;
  items : int array;
  accessing : Symbol.t option;
}

type t = {
  grammar : Grammar.t;
  items_tbl : Item.table;
  states : state array;
  (* goto_t.(s * n_terminals + t) and goto_n.(s * n_nonterminals + n),
     -1 when undefined. *)
  goto_t : int array;
  goto_n : int array;
  (* Packed per-state transition rows (DESIGN.md §14): state [s]'s
     outgoing terminal edges are (tr_t_syms.(i), tr_t_tgts.(i)) for
     i in [tr_t_offsets.(s) .. tr_t_offsets.(s+1) - 1], symbols
     ascending; likewise tr_n_* for nonterminals. The goto tables
     answer point lookups, these answer row scans — without the
     O(|terminals| + |nonterminals|) dense sweep per state. *)
  tr_t_offsets : int array;
  tr_t_syms : int array;
  tr_t_tgts : int array;
  tr_n_offsets : int array;
  tr_n_syms : int array;
  tr_n_tgts : int array;
  reductions : int list array;
  nt_transitions : (int * int) array;
  (* (p, A) -> dense transition index, via goto_n-shaped table. *)
  nt_trans_index : int array;
}

let grammar a = a.grammar
let items a = a.items_tbl
let n_states a = Array.length a.states
let state a i = a.states.(i)

(* Closure of a kernel: add initial items of every production of every
   nonterminal appearing after a dot, to fixpoint. Returns sorted. *)
let closure g tbl kernel =
  let added = Hashtbl.create 16 in
  let acc = ref [] in
  let rec add item =
    if not (Hashtbl.mem added item) then begin
      Hashtbl.replace added item ();
      acc := item :: !acc;
      match Item.next_symbol tbl item with
      | Some (Symbol.N n) ->
          Array.iter
            (fun pid -> add (Item.initial tbl ~prod:pid))
            (Grammar.productions_of g n)
      | Some (Symbol.T _) | None -> ()
    end
  in
  Array.iter add kernel;
  let arr = Array.of_list !acc in
  Array.sort Int.compare arr;
  arr

module Kernel_key = struct
  type t = int array

  let equal = ( = )
  let hash (k : int array) = Hashtbl.hash k
end

module Kernel_tbl = Hashtbl.Make (Kernel_key)

let build g =
  Budget.with_stage "lr0" @@ fun () ->
  let tbl = Item.make g in
  let states : state Vec.t = Vec.create () in
  let index = Kernel_tbl.create 256 in
  let trans : (Symbol.t * int) list Vec.t = Vec.create () in
  let partial () =
    Printf.sprintf "%d LR(0) states constructed" (Vec.length states)
  in
  (* Interns a kernel, returns its state id. *)
  let intern accessing kernel =
    match Kernel_tbl.find_opt index kernel with
    | Some id -> id
    | None ->
        Budget.count_state ~partial ();
        let id =
          Vec.push states
            { id = Vec.length states; kernel; items = [||]; accessing }
        in
        ignore (Vec.push trans []);
        Kernel_tbl.replace index kernel id;
        id
  in
  let initial_kernel = [| Item.initial tbl ~prod:0 |] in
  ignore (intern None initial_kernel);
  (* Worklist: states are processed in id order; new states append. *)
  let cursor = ref 0 in
  while !cursor < Vec.length states do
    Budget.burn ();
    let s = Vec.get states !cursor in
    let items = closure g tbl s.kernel in
    Budget.count_items ~partial (Array.length items);
    Vec.set states !cursor { s with items };
    (* Group non-final items by the symbol after the dot. *)
    let groups : (Symbol.t, int list) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    Array.iter
      (fun item ->
        match Item.next_symbol tbl item with
        | None -> ()
        | Some sym ->
            (match Hashtbl.find_opt groups sym with
            | None ->
                order := sym :: !order;
                Hashtbl.replace groups sym [ Item.advance tbl item ]
            | Some l -> Hashtbl.replace groups sym (Item.advance tbl item :: l)))
      items;
    let edges =
      List.rev_map
        (fun sym ->
          let kernel = Array.of_list (List.rev (Hashtbl.find groups sym)) in
          Array.sort Int.compare kernel;
          (sym, intern (Some sym) kernel))
        !order
    in
    (* Terminals first, ascending, then nonterminals ascending. *)
    let edges =
      List.sort (fun (a, _) (b, _) -> Symbol.compare a b) edges
    in
    Vec.set trans !cursor edges;
    incr cursor
  done;
  let states = Vec.to_array states in
  let n = Array.length states in
  let n_t = Grammar.n_terminals g and n_n = Grammar.n_nonterminals g in
  let goto_t = Array.make (n * n_t) (-1) in
  let goto_n = Array.make (n * n_n) (-1) in
  Vec.iteri
    (fun s edges ->
      List.iter
        (fun (sym, target) ->
          match sym with
          | Symbol.T t -> goto_t.((s * n_t) + t) <- target
          | Symbol.N m -> goto_n.((s * n_n) + m) <- target)
        edges)
    trans;
  (* The packed rows, straight from the already-sorted edge lists
     (terminals ascending, then nonterminals ascending per state). *)
  let tr_t_offsets = Array.make (n + 1) 0 in
  let tr_n_offsets = Array.make (n + 1) 0 in
  Vec.iteri
    (fun s edges ->
      List.iter
        (fun (sym, _) ->
          match sym with
          | Symbol.T _ -> tr_t_offsets.(s + 1) <- tr_t_offsets.(s + 1) + 1
          | Symbol.N _ -> tr_n_offsets.(s + 1) <- tr_n_offsets.(s + 1) + 1)
        edges)
    trans;
  for s = 1 to n do
    tr_t_offsets.(s) <- tr_t_offsets.(s) + tr_t_offsets.(s - 1);
    tr_n_offsets.(s) <- tr_n_offsets.(s) + tr_n_offsets.(s - 1)
  done;
  let tr_t_syms = Array.make tr_t_offsets.(n) 0 in
  let tr_t_tgts = Array.make tr_t_offsets.(n) 0 in
  let tr_n_syms = Array.make tr_n_offsets.(n) 0 in
  let tr_n_tgts = Array.make tr_n_offsets.(n) 0 in
  let fill_t = Array.make n 0 in
  let fill_n = Array.make n 0 in
  Vec.iteri
    (fun s edges ->
      List.iter
        (fun (sym, target) ->
          match sym with
          | Symbol.T t ->
              let i = tr_t_offsets.(s) + fill_t.(s) in
              tr_t_syms.(i) <- t;
              tr_t_tgts.(i) <- target;
              fill_t.(s) <- fill_t.(s) + 1
          | Symbol.N m ->
              let i = tr_n_offsets.(s) + fill_n.(s) in
              tr_n_syms.(i) <- m;
              tr_n_tgts.(i) <- target;
              fill_n.(s) <- fill_n.(s) + 1)
        edges)
    trans;
  let reductions =
    Array.map
      (fun st ->
        Array.to_list st.items
        |> List.filter_map (fun item ->
               if Item.is_final tbl item then
                 let p = Item.prod tbl item in
                 if p = 0 then None else Some p
               else None)
        |> List.sort_uniq Int.compare)
      states
  in
  (* Dense numbering of nonterminal transitions, row-major (state, nt). *)
  let nt_trans_index = Array.make (n * n_n) (-1) in
  let nt_transitions = Vec.create () in
  for s = 0 to n - 1 do
    for m = 0 to n_n - 1 do
      if goto_n.((s * n_n) + m) >= 0 then
        nt_trans_index.((s * n_n) + m) <-
          Vec.push nt_transitions (s, m)
    done
  done;
  {
    grammar = g;
    items_tbl = tbl;
    states;
    goto_t;
    goto_n;
    tr_t_offsets;
    tr_t_syms;
    tr_t_tgts;
    tr_n_offsets;
    tr_n_syms;
    tr_n_tgts;
    reductions;
    nt_transitions = Vec.to_array nt_transitions;
    nt_trans_index;
  }

let goto a s sym =
  let v =
    match sym with
    | Symbol.T t -> a.goto_t.((s * Grammar.n_terminals a.grammar) + t)
    | Symbol.N n -> a.goto_n.((s * Grammar.n_nonterminals a.grammar) + n)
  in
  if v < 0 then None else Some v

let goto_exn a s sym =
  match goto a s sym with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Lr0.goto_exn: no transition from %d on %s" s
           (Grammar.symbol_name a.grammar sym))

let transitions a s =
  (* Same order the dense-sweep version produced: terminals ascending,
     then nonterminals ascending — but off the packed rows. *)
  let acc = ref [] in
  for i = a.tr_n_offsets.(s + 1) - 1 downto a.tr_n_offsets.(s) do
    acc := (Symbol.N a.tr_n_syms.(i), a.tr_n_tgts.(i)) :: !acc
  done;
  for i = a.tr_t_offsets.(s + 1) - 1 downto a.tr_t_offsets.(s) do
    acc := (Symbol.T a.tr_t_syms.(i), a.tr_t_tgts.(i)) :: !acc
  done;
  !acc

(* The pre-§14 implementation of [transitions]: a dense sweep of the
   goto rows. Kept (unused by the engine) as the frozen access pattern
   of the boxed-layout bench baseline. *)
let transitions_dense a s =
  let n_t = Grammar.n_terminals a.grammar in
  let n_n = Grammar.n_nonterminals a.grammar in
  let acc = ref [] in
  for m = n_n - 1 downto 0 do
    let v = a.goto_n.((s * n_n) + m) in
    if v >= 0 then acc := (Symbol.N m, v) :: !acc
  done;
  for t = n_t - 1 downto 0 do
    let v = a.goto_t.((s * n_t) + t) in
    if v >= 0 then acc := (Symbol.T t, v) :: !acc
  done;
  !acc

let iter_t_transitions a s f =
  for i = a.tr_t_offsets.(s) to a.tr_t_offsets.(s + 1) - 1 do
    f a.tr_t_syms.(i) a.tr_t_tgts.(i)
  done

let iter_n_transitions a s f =
  for i = a.tr_n_offsets.(s) to a.tr_n_offsets.(s + 1) - 1 do
    f a.tr_n_syms.(i) a.tr_n_tgts.(i)
  done

let reductions a s = a.reductions.(s)

let traverse a p rhs ~from =
  let s = ref p in
  for i = from to Array.length rhs - 1 do
    s := goto_exn a !s rhs.(i)
  done;
  !s

let n_nt_transitions a = Array.length a.nt_transitions
let nt_transition a x = a.nt_transitions.(x)

let nt_transition_target a x =
  let p, m = a.nt_transitions.(x) in
  a.goto_n.((p * Grammar.n_nonterminals a.grammar) + m)

let find_nt_transition a p nt =
  let v = a.nt_trans_index.((p * Grammar.n_nonterminals a.grammar) + nt) in
  if v < 0 then raise Not_found else v

let accept_state a = goto_exn a 0 (Symbol.N a.grammar.start)

let n_conflict_free_lr0 a =
  let ok = ref true in
  Array.iteri
    (fun s reds ->
      match reds with
      | [] -> ()
      | [ _ ] ->
          (* any shift on a terminal conflicts *)
          let n_t = Grammar.n_terminals a.grammar in
          for t = 0 to n_t - 1 do
            if a.goto_t.((s * n_t) + t) >= 0 then ok := false
          done
      | _ :: _ :: _ -> ok := false)
    a.reductions;
  (* The accept state reduces nothing (production 0 excluded) but shifts $;
     that is fine by construction. *)
  !ok

let size_report a =
  let kernel_items =
    Array.fold_left (fun acc s -> acc + Array.length s.kernel) 0 a.states
  in
  let transitions_count =
    Array.fold_left (fun acc v -> if v >= 0 then acc + 1 else acc) 0 a.goto_t
    + Array.fold_left (fun acc v -> if v >= 0 then acc + 1 else acc) 0 a.goto_n
  in
  (Array.length a.states, kernel_items, transitions_count)

let pp_state a ppf s =
  let st = a.states.(s) in
  Format.fprintf ppf "@[<v>state %d" s;
  (match st.accessing with
  | Some sym ->
      Format.fprintf ppf " (on %s)" (Grammar.symbol_name a.grammar sym)
  | None -> ());
  Format.fprintf ppf "@,";
  let kernel_set = Array.to_list st.kernel in
  Array.iter
    (fun item ->
      let mark = if List.mem item kernel_set then "*" else " " in
      Format.fprintf ppf "  %s %a@," mark (Item.pp a.items_tbl) item)
    st.items;
  List.iter
    (fun (sym, target) ->
      Format.fprintf ppf "  %s -> state %d@,"
        (Grammar.symbol_name a.grammar sym)
        target)
    (transitions a s);
  List.iter
    (fun p ->
      Format.fprintf ppf "  reduce %a@,"
        (Grammar.pp_production a.grammar)
        (Grammar.production a.grammar p))
    a.reductions.(s);
  Format.fprintf ppf "@]"
