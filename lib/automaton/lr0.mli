(** The LR(0) automaton (canonical collection of sets of LR(0) items).

    This is the machine the paper's look-ahead computation runs over: the
    DeRemer–Pennello relations are defined on its states and nonterminal
    transitions, so besides the usual states/goto the interface exposes a
    dense numbering of nonterminal transitions (the pairs [(p, A)] the
    paper writes) and rhs walks ([traverse]).

    States are numbered from 0 (the initial state). Construction is by
    kernel hashconsing: a state is identified by its sorted kernel item
    set; closures are computed once per state and cached. *)

type state = {
  id : int;
  kernel : int array;  (** sorted item ids *)
  items : int array;  (** closure, sorted; kernel ⊆ items *)
  accessing : Symbol.t option;
      (** The symbol every in-edge of this state is labelled with ([None]
          only for state 0). A standard LR(0) invariant. *)
}

type t

val build : Grammar.t -> t
(** Builds the canonical collection. The grammar must be reduced
    (unproductive parts would create dead states); this is not checked
    here — use {!Transform.reduce} first if unsure. *)

val grammar : t -> Grammar.t
val items : t -> Item.table
val n_states : t -> int
val state : t -> int -> state

val goto : t -> int -> Symbol.t -> int option
(** The transition function δ(state, symbol). *)

val goto_exn : t -> int -> Symbol.t -> int

val transitions : t -> int -> (Symbol.t * int) list
(** Out-edges of a state, terminals first, ascending ids. *)

val iter_t_transitions : t -> int -> (int -> int -> unit) -> unit
(** [iter_t_transitions a s f] calls [f terminal target] for each
    outgoing terminal edge of state [s], terminal ids ascending — an
    allocation-free row scan over the packed transition arrays, for
    hot paths that the {!transitions} list (and the dense goto sweep
    behind it) would dominate. *)

val iter_n_transitions : t -> int -> (int -> int -> unit) -> unit
(** Nonterminal counterpart of {!iter_t_transitions}. *)

val transitions_dense : t -> int -> (Symbol.t * int) list
(** The pre-data-layout implementation of {!transitions}: an
    [O(terminals + nonterminals)] dense sweep of the goto rows. Same
    result, kept only so the boxed-layout bench baseline
    ({!Lalr_baselines.Boxed}) measures exactly the access pattern the
    packed rows replaced. Not for new code. *)

val reductions : t -> int -> int list
(** Production ids of final items in the state's closure, ascending.
    Production 0's final item is never included: reaching it means
    accept, and its "look-ahead" needs no computation (paper's
    convention — [S' → S $] is handled by the accept action on [$]). *)

val traverse : t -> int -> Symbol.t array -> from:int -> int
(** [traverse a p rhs ~from] follows transitions from state [p] along
    [rhs.(from..)]. Raises [Invalid_argument] if a transition is missing
    (cannot happen for a rhs suffix of an item present in [p]). *)

(** {2 Nonterminal transitions}

    The paper's set equations are indexed by nonterminal transitions
    [(p, A)]; they get a dense numbering [0 .. n_nt_transitions-1]. *)

val n_nt_transitions : t -> int
val nt_transition : t -> int -> int * int
(** [nt_transition a x] is the pair [(state, nonterminal)] of
    transition [x]. *)

val nt_transition_target : t -> int -> int
(** The state reached, i.e. [goto_exn a p (N a')]. *)

val find_nt_transition : t -> int -> int -> int
(** [find_nt_transition a p nt] is the transition index for [(p, nt)].
    Raises [Not_found] if state [p] has no transition on [nt]. *)

val accept_state : t -> int
(** The state reached from state 0 on the user start symbol — the state
    whose [$]-transition is the accept action. *)

val n_conflict_free_lr0 : t -> bool
(** True iff the grammar is LR(0): no state has both a reduction and a
    shift, nor two reductions. *)

val size_report : t -> int * int * int
(** (states, total kernel items, total transitions) — the T1 columns. *)

val pp_state : t -> Format.formatter -> int -> unit
(** Multi-line dump of one state: items, then transitions. *)
