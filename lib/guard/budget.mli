(** Resource budgets and the uniform failure model.

    Everything downstream of a grammar — LR(0) construction, the
    LR(1)/LALR(k) baselines, the Digraph fixpoints, the table-driven
    parser — has exponential worst cases on adversarial input. A
    {!t} packages the four caps that keep those computations bounded:

    - {b fuel}: an abstract step counter burned at every loop
      iteration of every instrumented algorithm;
    - {b wall clock}: a deadline in seconds, checked at fuel ticks
      (amortised: the clock is read at most once per
      {!wall_check_mask}+1 ticks) and at every state interning;
    - {b states}: a cap on constructed automaton states (LR(0),
      canonical LR(1), LR(k));
    - {b items}: a cap on derived set elements (closure items,
      k-strings, spontaneous look-aheads).

    A budget is installed for the dynamic extent of a computation with
    {!with_budget}; instrumented code calls the check points
    ({!burn}, {!count_state}, {!count_items}), which are no-ops —
    a single domain-local read — when no budget is installed. Exceeding
    any
    cap raises {!Exceeded} carrying a structured {!exceeded} outcome:
    the stage that was running, the resource, consumed vs. cap, and a
    description of the partial artifact when the algorithm offered
    one. Exactly one failure shape for every resource, every stage.

    The same module owns the other half of the failure model:
    {!Internal_error}, raised by {!broken_invariant} where the code
    used to say [assert false]. An internal error names the stage and
    the invariant that broke, so a corrupted table or an impossible
    automaton state surfaces as a typed diagnostic instead of an
    abort.

    Budgets nest: an engine slot installing the same budget inside a
    CLI-installed extent only renames the stage; consumption counters
    are shared, so the caps bound the {e whole} pipeline, not each
    stage separately. *)

type resource = Fuel | Wall_clock | States | Items

val resource_name : resource -> string
(** ["fuel"], ["wall-clock"], ["states"], ["items"]. *)

type t
(** A mutable budget: caps fixed at creation, consumption accumulated
    across every computation run under it. *)

val create :
  ?fuel:int -> ?wall:float -> ?max_states:int -> ?max_items:int -> unit -> t
(** Omitted caps are unlimited. [wall] is in seconds, measured from
    the first {!with_budget} installation of this budget. Raises
    [Invalid_argument] on a non-positive cap. *)

val unlimited : unit -> t
(** A budget with no caps: installs and ticks, never trips. *)

val intersect_wall : t -> remaining:float -> t
(** [intersect_wall b ~remaining] is a fresh, unconsumed budget with
    [b]'s caps except that its wall cap is
    [min (cap b Wall_clock) remaining] (or [remaining] when [b] has no
    wall cap). The serve pool uses it to fold the remaining request
    deadline into the per-request budget, so in-flight work
    self-terminates when the deadline passes. Raises
    [Invalid_argument] when [remaining <= 0] — an already-expired
    deadline must be shed by the caller, not run. *)

type exceeded = {
  ex_stage : string;  (** innermost stage running when the cap tripped *)
  ex_resource : resource;
  ex_consumed : float;  (** fuel/states/items as counts, wall in seconds *)
  ex_cap : float;
  ex_partial : string option;
      (** human description of the partial artifact, when the
          interrupted algorithm offered one *)
}

exception Exceeded of exceeded
(** The single structured outcome for every budget trip. Never escapes
    {!Lalr_engine.Engine.run} or the [lalrgen] front end. *)

exception Internal_error of { stage : string; invariant : string }
(** A broken internal invariant — the typed replacement for
    [assert false] in the driver, the baselines and the LALR(k)
    extension. *)

val pp_exceeded : Format.formatter -> exceeded -> unit
(** [budget exceeded in stage 'lr1': states: consumed 10000 of cap
    10000] plus the partial-artifact line when present. *)

val exceeded_to_json : exceeded -> string
(** One-line JSON object with [stage], [resource], [consumed], [cap]
    and [partial] fields, for machine consumers. *)

(** {2 Installation} *)

val with_budget : t -> stage:string -> (unit -> 'a) -> 'a
(** Runs the thunk with [t] installed as the ambient budget and
    [stage] as the current stage name, restoring the previous ambient
    state afterwards (also on exceptions). The wall clock starts at
    the outermost installation. Re-installing the budget that is
    already ambient only renames the stage — consumption is shared. *)

val with_stage : string -> (unit -> 'a) -> 'a
(** Renames the current stage for the extent of the thunk; a no-op
    when no budget is installed. Algorithms with blow-up potential
    use this to label themselves more precisely than the engine slot
    that forced them. *)

val active : unit -> bool
(** Whether a budget is currently installed. *)

val current_stage : unit -> string
(** The innermost stage name, or ["?"] when no budget is installed. *)

(** {2 Check points}

    All no-ops when no budget is installed. *)

val burn : ?amount:int -> unit -> unit
(** Consumes [amount] (default 1) fuel; checks the wall clock every
    {!wall_check_mask}+1 calls. Raises {!Exceeded} past a cap. *)

val count_state : ?partial:(unit -> string) -> unit -> unit
(** Counts one constructed automaton state and checks the wall clock.
    [partial] produces the partial-artifact description if this very
    state trips the cap. *)

val count_items : ?partial:(unit -> string) -> int -> unit
(** Counts [n] derived set elements. *)

val check_wall : unit -> unit
(** Forces a wall-clock check now (the other check points amortise
    it). *)

val wall_check_mask : int
(** The clock is read when [fuel_ticks land wall_check_mask = 0]. *)

val broken_invariant : stage:string -> string -> 'a
(** Raises {!Internal_error}. When a budget is installed, its current
    stage wins over [~stage] (it is more precise about what was
    running). *)

(** {2 Introspection} *)

val consumed : t -> resource -> float
(** Wall consumption is 0 until the budget is first installed. *)

val cap : t -> resource -> float option

(** {2 CLI spec}

    [--budget] accepts a comma-separated list of [resource=value]
    caps: [fuel=100000,wall=500ms,states=10000,items=1e6]. [wall]
    values take an optional [ms] or [s] suffix (default seconds);
    the counting caps accept scientific notation. *)

val of_spec : string -> (t, string) result

val spec_doc : string
(** One-line grammar of the spec, for [--help] texts. *)
