type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
  seed : int;
}

let default =
  {
    max_attempts = 2;
    base_delay = 0.05;
    multiplier = 2.0;
    max_delay = 1.0;
    jitter = 0.25;
    seed = 0x1a1a;
  }

(* Splitmix64 finalizer over (seed, attempt): a full-avalanche hash is
   overkill for jitter, but it is stateless, deterministic and already
   the idiom used by the scaled-grammar generator. *)
let mix seed attempt =
  let z = Int64.of_int ((seed * 0x9e3779b9) lxor (attempt * 0x85ebca6b)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let delay_for p ~attempt =
  let raw = p.base_delay *. (p.multiplier ** float_of_int (attempt - 1)) in
  let capped = Float.min raw p.max_delay in
  if p.jitter <= 0. then capped
  else
    (* 53 mantissa-sized bits of the hash -> u in [0, 1). *)
    let bits = Int64.to_float (Int64.shift_right_logical (mix p.seed attempt) 11) in
    let u = bits /. 9007199254740992.0 in
    capped *. (1. -. p.jitter +. (2. *. p.jitter *. u))

let run ?(policy = default) ?(sleep = Unix.sleepf) ~retryable f =
  let rec go attempt =
    let r = f ~attempt in
    if retryable r && attempt < policy.max_attempts then begin
      sleep (delay_for policy ~attempt);
      go (attempt + 1)
    end
    else (r, attempt - 1)
  in
  go 1
