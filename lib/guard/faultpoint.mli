(** Named, deterministic fault-injection sites.

    Robustness claims are only as good as the failures they have been
    exercised against. This module plants a named {e fault point} at
    every boundary the failure model defends — each engine slot, each
    tolerant reader entry, and both sides of the artifact store — and
    lets a test (or an operator) arm exactly one deterministic failure
    at exactly one of them:

    - {b raise}: a broken invariant — the site raises the typed
      {!Budget.Internal_error} (documented exit code 4);
    - {b wall}: a resource trip — the site raises {!Budget.Exceeded}
      with the wall-clock resource (documented exit code 3);
    - {b corrupt}: data damage at a data boundary — the readers inject
      a diagnostic (exit 2), the store flips payload bytes so the next
      read must detect, quarantine and recompute (exit 0).

    Store sites are special: the store absorbs {e every} failure of its
    own I/O (a cache is an optional acceleration, never a correctness
    dependency), so all three kinds there are documented to leave the
    run's exit code at 0 — visible only in the store counters.

    When nothing is armed, {!check} and {!take_corrupt} compile to a
    single [Atomic.get] (the same trick as {!Budget}'s check points),
    so production runs pay nothing, on any number of domains.

    Armed via [lalrgen --inject SPEC] or [LALRGEN_INJECT]; see
    {!spec_doc} for the grammar. *)

type kind = Raise | Wall | Corrupt

val kind_name : kind -> string
(** ["raise"], ["wall"], ["corrupt"]. *)

val kind_of_name : string -> kind option

type site_class = Compute | Reader | Store_io | Serve

type site_info = {
  si_name : string;
  si_class : site_class;
  si_kinds : kind list;  (** the kinds meaningful at this site *)
}

val sites : site_info list
(** Every registered site: the engine slots, the two reader entries
    ([reader], [menhir]), the store boundaries ([store-read],
    [store-write]) and the daemon loop stages of [lalrgen serve]
    ([serve-accept], [serve-decode], [serve-dispatch],
    [serve-respond], [serve-worker]), plus the client-side connect
    boundary ([serve-client], checked by {!Lalr_serve.Client} before
    every fresh connection — a fire-once raise is absorbed by the
    client's retry/reconnect, repeated firings feed its circuit
    breaker). The serve sites are absorbed — the daemon folds them
    into typed per-request responses ([serve-worker] via a supervised
    worker-domain restart), the client into its reconnect path — so
    their documented process exit is 0. *)

val find_site : string -> site_info option

val expected_exit : site_info -> kind -> int
(** The documented [lalrgen] exit code when this injection fires:
    compute raise → 4, compute wall → 3, reader corrupt → 2, any store
    kind → 0 (absorbed), … The CI matrix asserts observed = documented
    for every [site × kind] pair. *)

(** {2 Arming} *)

val arm : string -> (unit, string) result
(** [arm spec] replaces the armed set with the parsed [spec]:
    a comma-separated list of [site:kind] or [site:kind\@n] entries,
    where [\@n] fires on the [n]-th hit of that site (default 1), once.
    The pseudo-site [store] arms both [store-read] and [store-write].
    [Error] names the offending entry (unknown site, kind not
    meaningful there, bad count). *)

val disarm : unit -> unit
(** Clears the armed set (and all hit counters). *)

val armed : unit -> bool

val spec_doc : string
(** One-line grammar of the spec, for [--help] texts. *)

exception Injected of { site : string }
(** What a [raise]-kind injection at a {e store} site raises: a stand-in
    for an I/O error, absorbed by the store's catch-all. Compute and
    reader sites raise the typed {!Budget.Internal_error} instead, so
    the injection takes the exact path a real invariant break would. *)

(** {2 Check points}

    Both are a single [Atomic.get] when nothing is armed. *)

val check : string -> unit
(** [check site] is called at the site's boundary. If a [raise] or
    [wall] injection is armed for [site] and its hit count is reached,
    fires the corresponding exception; otherwise returns unit. *)

val take_corrupt : string -> bool
(** [take_corrupt site] is called where the site can damage data in a
    detectable way. [true] exactly once, when an armed [corrupt]
    injection for [site] reaches its hit count. *)
