type resource = Fuel | Wall_clock | States | Items

let resource_name = function
  | Fuel -> "fuel"
  | Wall_clock -> "wall-clock"
  | States -> "states"
  | Items -> "items"

type t = {
  fuel_cap : int option;
  wall_cap : float option;
  states_cap : int option;
  items_cap : int option;
  mutable started : float option;  (* set at outermost installation *)
  mutable fuel_used : int;
  mutable states_used : int;
  mutable items_used : int;
  mutable ticks : int;  (* burn calls, for amortised wall checks *)
}

let positive what = function
  | Some v when v <= 0 -> invalid_arg (Printf.sprintf "Budget.create: %s cap must be positive" what)
  | v -> v

let positive_f what = function
  | Some v when v <= 0. -> invalid_arg (Printf.sprintf "Budget.create: %s cap must be positive" what)
  | v -> v

let create ?fuel ?wall ?max_states ?max_items () =
  {
    fuel_cap = positive "fuel" fuel;
    wall_cap = positive_f "wall" wall;
    states_cap = positive "states" max_states;
    items_cap = positive "items" max_items;
    started = None;
    fuel_used = 0;
    states_used = 0;
    items_used = 0;
    ticks = 0;
  }

let unlimited () = create ()

(* Deadline intersection for the serve pool: the remaining request
   deadline becomes (part of) the wall cap, so in-flight work
   self-terminates when the client's deadline passes. The result is a
   fresh, unconsumed budget — the pool parses a fresh budget per
   attempt anyway, and sharing consumption with the input would make
   retries pay for each other. *)
let intersect_wall b ~remaining =
  if remaining <= 0. then
    invalid_arg "Budget.intersect_wall: remaining must be positive";
  let wall =
    match b.wall_cap with
    | Some w -> Float.min w remaining
    | None -> remaining
  in
  {
    b with
    wall_cap = Some wall;
    started = None;
    fuel_used = 0;
    states_used = 0;
    items_used = 0;
    ticks = 0;
  }

type exceeded = {
  ex_stage : string;
  ex_resource : resource;
  ex_consumed : float;
  ex_cap : float;
  ex_partial : string option;
}

exception Exceeded of exceeded
exception Internal_error of { stage : string; invariant : string }

let pp_exceeded ppf e =
  Format.fprintf ppf "budget exceeded in stage '%s': %s: consumed %s of cap %s"
    e.ex_stage
    (resource_name e.ex_resource)
    (match e.ex_resource with
    | Wall_clock -> Printf.sprintf "%.3fs" e.ex_consumed
    | Fuel | States | Items -> Printf.sprintf "%.0f" e.ex_consumed)
    (match e.ex_resource with
    | Wall_clock -> Printf.sprintf "%.3fs" e.ex_cap
    | Fuel | States | Items -> Printf.sprintf "%.0f" e.ex_cap);
  match e.ex_partial with
  | Some p -> Format.fprintf ppf "@,  partial: %s" p
  | None -> ()

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let exceeded_to_json e =
  Printf.sprintf
    "{\"error\":\"budget_exceeded\",\"stage\":\"%s\",\"resource\":\"%s\",\
     \"consumed\":%g,\"cap\":%g,\"partial\":%s}"
    (json_escape e.ex_stage)
    (resource_name e.ex_resource)
    e.ex_consumed e.ex_cap
    (match e.ex_partial with
    | Some p -> Printf.sprintf "\"%s\"" (json_escape p)
    | None -> "null")

(* ------------------------------------------------------------------ *)
(* Ambient installation                                                *)
(* ------------------------------------------------------------------ *)

(* The ambient budget and the innermost stage name. A single
   domain-local cell, not a stack: [with_budget]/[with_stage] save and
   restore the previous value around the thunk, which gives stack
   behaviour without allocation on the hot no-budget path. Domain-local
   because a budget is the property of one job on one domain (the serve
   model: one budget per request, one request per worker at a time);
   the counters inside [t] stay plain mutable under that single-writer
   rule. *)
let ambient : (t * string) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let get_ambient () = Domain.DLS.get ambient
let set_ambient v = Domain.DLS.set ambient v

let active () = get_ambient () <> None
let current_stage () =
  match get_ambient () with Some (_, s) -> s | None -> "?"

let with_budget b ~stage f =
  if b.started = None then b.started <- Some (Unix.gettimeofday ());
  let saved = get_ambient () in
  set_ambient (Some (b, stage));
  Fun.protect ~finally:(fun () -> set_ambient saved) f

let with_stage stage f =
  match get_ambient () with
  | None -> f ()
  | Some (b, _) as saved ->
      set_ambient (Some (b, stage));
      Fun.protect ~finally:(fun () -> set_ambient saved) f

(* ------------------------------------------------------------------ *)
(* Check points                                                        *)
(* ------------------------------------------------------------------ *)

let trip b stage resource ~consumed ~cap partial =
  ignore b;
  raise
    (Exceeded
       {
         ex_stage = stage;
         ex_resource = resource;
         ex_consumed = consumed;
         ex_cap = cap;
         ex_partial = (match partial with Some f -> Some (f ()) | None -> None);
       })

let wall_check_mask = 0xFFF

let check_wall_of b stage partial =
  match (b.wall_cap, b.started) with
  | Some cap, Some t0 ->
      let elapsed = Unix.gettimeofday () -. t0 in
      if elapsed > cap then
        trip b stage Wall_clock ~consumed:elapsed ~cap partial
  | _ -> ()

let check_wall () =
  match get_ambient () with
  | None -> ()
  | Some (b, stage) -> check_wall_of b stage None

let burn ?(amount = 1) () =
  match get_ambient () with
  | None -> ()
  | Some (b, stage) ->
      b.fuel_used <- b.fuel_used + amount;
      b.ticks <- b.ticks + 1;
      (match b.fuel_cap with
      | Some cap when b.fuel_used > cap ->
          trip b stage Fuel ~consumed:(float_of_int b.fuel_used)
            ~cap:(float_of_int cap) None
      | _ -> ());
      if b.ticks land wall_check_mask = 0 then check_wall_of b stage None

let count_state ?partial () =
  match get_ambient () with
  | None -> ()
  | Some (b, stage) ->
      b.states_used <- b.states_used + 1;
      (match b.states_cap with
      | Some cap when b.states_used > cap ->
          trip b stage States ~consumed:(float_of_int b.states_used)
            ~cap:(float_of_int cap) partial
      | _ -> ());
      check_wall_of b stage partial

let count_items ?partial n =
  match get_ambient () with
  | None -> ()
  | Some (b, stage) ->
      b.items_used <- b.items_used + n;
      (match b.items_cap with
      | Some cap when b.items_used > cap ->
          trip b stage Items ~consumed:(float_of_int b.items_used)
            ~cap:(float_of_int cap) partial
      | _ -> ())

let broken_invariant ~stage invariant =
  let stage = match get_ambient () with Some (_, s) -> s | None -> stage in
  raise (Internal_error { stage; invariant })

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let consumed b = function
  | Fuel -> float_of_int b.fuel_used
  | States -> float_of_int b.states_used
  | Items -> float_of_int b.items_used
  | Wall_clock -> (
      match b.started with
      | None -> 0.
      | Some t0 -> Unix.gettimeofday () -. t0)

let cap b = function
  | Fuel -> Option.map float_of_int b.fuel_cap
  | States -> Option.map float_of_int b.states_cap
  | Items -> Option.map float_of_int b.items_cap
  | Wall_clock -> b.wall_cap

(* ------------------------------------------------------------------ *)
(* CLI spec                                                            *)
(* ------------------------------------------------------------------ *)

let spec_doc =
  "comma-separated caps: fuel=N, wall=Ns|Nms, states=N, items=N (N accepts \
   scientific notation, e.g. fuel=1e6,wall=500ms)"

let parse_count what v =
  match float_of_string_opt v with
  | Some f when f >= 1. && Float.is_integer (Float.round f) && f <= 1e15 ->
      Ok (int_of_float (Float.round f))
  | Some _ -> Error (Printf.sprintf "%s cap must be a positive count: %S" what v)
  | None -> Error (Printf.sprintf "invalid %s cap %S" what v)

let parse_wall v =
  let num, scale =
    if Filename.check_suffix v "ms" then
      (String.sub v 0 (String.length v - 2), 1e-3)
    else if Filename.check_suffix v "s" then
      (String.sub v 0 (String.length v - 1), 1.)
    else (v, 1.)
  in
  match float_of_string_opt num with
  | Some f when f > 0. -> Ok (f *. scale)
  | Some _ -> Error (Printf.sprintf "wall cap must be positive: %S" v)
  | None -> Error (Printf.sprintf "invalid wall cap %S" v)

let of_spec spec =
  let parts =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then Error "empty budget spec"
  else
    let rec go fuel wall states items = function
      | [] -> Ok (create ?fuel ?wall ?max_states:states ?max_items:items ())
      | part :: rest -> (
          match String.index_opt part '=' with
          | None ->
              Error
                (Printf.sprintf "budget spec entry %S is not resource=value"
                   part)
          | Some i -> (
              let key = String.sub part 0 i in
              let v = String.sub part (i + 1) (String.length part - i - 1) in
              match key with
              | "fuel" -> (
                  match parse_count "fuel" v with
                  | Ok n -> go (Some n) wall states items rest
                  | Error e -> Error e)
              | "wall" -> (
                  match parse_wall v with
                  | Ok f -> go fuel (Some f) states items rest
                  | Error e -> Error e)
              | "states" -> (
                  match parse_count "states" v with
                  | Ok n -> go fuel wall (Some n) items rest
                  | Error e -> Error e)
              | "items" -> (
                  match parse_count "items" v with
                  | Ok n -> go fuel wall states (Some n) rest
                  | Error e -> Error e)
              | _ ->
                  Error
                    (Printf.sprintf
                       "unknown budget resource %S (expected fuel, wall, \
                        states or items)"
                       key)))
    in
    go None None None None parts
