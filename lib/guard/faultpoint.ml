module Trace = Lalr_trace.Trace

type kind = Raise | Wall | Corrupt

let kind_name = function Raise -> "raise" | Wall -> "wall" | Corrupt -> "corrupt"

let kind_of_name = function
  | "raise" -> Some Raise
  | "wall" -> Some Wall
  | "corrupt" -> Some Corrupt
  | _ -> None

type site_class = Compute | Reader | Store_io | Serve

type site_info = {
  si_name : string;
  si_class : site_class;
  si_kinds : kind list;
}

let compute name = { si_name = name; si_class = Compute; si_kinds = [ Raise; Wall ] }

(* The engine slot names (lib/engine keeps them in sync: its slot
   constructor asserts membership in this list), the two tolerant
   reader entries, the store I/O boundaries, and the daemon loop
   stages of lalrgen serve (lib/serve). *)
let serve name kinds = { si_name = name; si_class = Serve; si_kinds = kinds }

let sites =
  List.map compute
    [
      "analysis"; "lr0"; "relations"; "follow"; "la"; "slr"; "nqlalr";
      "propagation"; "lr1"; "tables"; "slr_tables"; "nqlalr_tables";
      "classification"; "classification+lr1";
    ]
  @ [
      { si_name = "reader"; si_class = Reader; si_kinds = [ Raise; Wall; Corrupt ] };
      { si_name = "menhir"; si_class = Reader; si_kinds = [ Raise; Wall; Corrupt ] };
      { si_name = "store-read"; si_class = Store_io; si_kinds = [ Raise; Wall; Corrupt ] };
      { si_name = "store-write"; si_class = Store_io; si_kinds = [ Raise; Wall; Corrupt ] };
      (* serve-worker is the crash site: it sits OUTSIDE the per-job
         typed boundary, so a raise there kills the worker domain and
         exercises supervision (restart + typed internal response for
         the in-flight request). The other serve sites are absorbed
         into per-request typed responses by the daemon loop. *)
      serve "serve-accept" [ Raise; Wall ];
      serve "serve-decode" [ Raise; Wall; Corrupt ];
      serve "serve-dispatch" [ Raise; Wall ];
      serve "serve-respond" [ Raise; Wall ];
      serve "serve-worker" [ Raise ];
      (* serve-client fires on the CLIENT side of the wire, in
         Client.connect: a fire-once raise is absorbed by the client's
         Retry/reconnect path; repeated firings feed the circuit
         breaker. The serving process never sees it. *)
      serve "serve-client" [ Raise ];
    ]

let find_site name = List.find_opt (fun s -> s.si_name = name) sites

let expected_exit site kind =
  match (site.si_class, kind) with
  (* The store absorbs every failure of its own I/O: a cache is an
     optional acceleration. Corruption surfaces on the NEXT read as a
     quarantine + recompute — also exit 0, visible in the counters. *)
  | Store_io, _ -> 0
  (* The daemon absorbs every serve-site firing into a typed
     per-request response (or a supervised worker restart) and keeps
     serving; its own exit stays 0 through a clean drain. The serve
     chaos matrix asserts the per-request statuses instead. *)
  | Serve, _ -> 0
  | _, Raise -> 4
  | _, Wall -> 3
  | Reader, Corrupt -> 2
  | Compute, Corrupt -> 4 (* unreachable: not in si_kinds *)

(* ------------------------------------------------------------------ *)
(* Arming                                                             *)
(* ------------------------------------------------------------------ *)

type armed_point = {
  a_site : string;
  a_kind : kind;
  a_at : int;  (* fire on the a_at-th hit of the site *)
  a_hits : int Atomic.t;
  a_fired : bool Atomic.t;
}

(* The whole armed state behind one Atomic: [check]/[take_corrupt] are
   a single atomic read of this cell when nothing is armed (the Budget
   trick). The per-point hit counters are Atomic.t too, so an armed
   matrix run stays race-free even if sites are probed from several
   domains; arming itself (a whole-list replace) is test-harness
   single-writer. *)
let state : armed_point list Atomic.t = Atomic.make []

let armed () = Atomic.get state <> []
let disarm () = Atomic.set state []

let spec_doc =
  "comma-separated injections: site:kind or site:kind@N (fire on the N-th \
   hit, once; default 1). kind is raise, wall or corrupt; 'lalrgen \
   faultpoints' lists the sites and the documented exit code of each pair"

let parse_entry entry =
  match String.index_opt entry ':' with
  | None -> Error (Printf.sprintf "injection %S is not site:kind[@N]" entry)
  | Some i -> (
      let site = String.sub entry 0 i in
      let rest = String.sub entry (i + 1) (String.length entry - i - 1) in
      let kind_s, at =
        match String.index_opt rest '@' with
        | None -> (rest, Ok 1)
        | Some j ->
            let n = String.sub rest (j + 1) (String.length rest - j - 1) in
            ( String.sub rest 0 j,
              match int_of_string_opt n with
              | Some v when v >= 1 -> Ok v
              | _ -> Error (Printf.sprintf "bad hit count %S in %S" n entry) )
      in
      match at with
      | Error e -> Error e
      | Ok at -> (
          match kind_of_name kind_s with
          | None ->
              Error
                (Printf.sprintf
                   "unknown injection kind %S in %S (expected raise, wall or \
                    corrupt)"
                   kind_s entry)
          | Some kind ->
              let site_names =
                (* 'store' is a convenience alias for both boundaries. *)
                if site = "store" then [ "store-read"; "store-write" ]
                else [ site ]
              in
              let rec check_sites acc = function
                | [] -> Ok (List.rev acc)
                | name :: rest -> (
                    match find_site name with
                    | None ->
                        Error
                          (Printf.sprintf
                             "unknown fault-injection site %S (see 'lalrgen \
                              faultpoints')"
                             name)
                    | Some info when not (List.mem kind info.si_kinds) ->
                        Error
                          (Printf.sprintf
                             "kind %s is not meaningful at site %s (supported: \
                              %s)"
                             (kind_name kind) name
                             (String.concat ", "
                                (List.map kind_name info.si_kinds)))
                    | Some _ ->
                        check_sites
                          ({
                             a_site = name;
                             a_kind = kind;
                             a_at = at;
                             a_hits = Atomic.make 0;
                             a_fired = Atomic.make false;
                           }
                          :: acc)
                          rest)
              in
              check_sites [] site_names))

let arm spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if entries = [] then Error "empty injection spec"
  else
    let rec go acc = function
      | [] ->
          Atomic.set state (List.concat (List.rev acc));
          Ok ()
      | e :: rest -> (
          match parse_entry e with
          | Ok pts -> go (pts :: acc) rest
          | Error msg -> Error msg)
    in
    go [] entries

(* ------------------------------------------------------------------ *)
(* Check points                                                       *)
(* ------------------------------------------------------------------ *)

exception Injected of { site : string }

let fire site = function
  | Wall ->
      raise
        (Budget.Exceeded
           {
             Budget.ex_stage = site;
             ex_resource = Budget.Wall_clock;
             ex_consumed = 0.;
             ex_cap = 0.;
             ex_partial = Some "injected fault (wall)";
           })
  | Raise -> (
      match find_site site with
      | Some { si_class = Store_io; _ } ->
          (* Stand-in for an I/O error; the store's catch-all absorbs
             it. An Internal_error here would wrongly take the exit-4
             path for a failure the store is contracted to survive. *)
          raise (Injected { site })
      | _ ->
          raise
            (Budget.Internal_error
               { stage = site; invariant = "injected fault (raise)" }))
  | Corrupt ->
      (* Corrupt fires through [take_corrupt]; reaching here means a
         data site forgot to consume it — treat as a broken invariant
         rather than silently ignoring the armed injection. *)
      raise
        (Budget.Internal_error
           { stage = site; invariant = "injected corruption not consumed" })

let hit_slow site ~corrupt =
  let fired = ref false in
  List.iter
    (fun p ->
      if
        p.a_site = site
        && (not (Atomic.get p.a_fired))
        && (if corrupt then p.a_kind = Corrupt else p.a_kind <> Corrupt)
      then begin
        if Atomic.fetch_and_add p.a_hits 1 + 1 = p.a_at then begin
          Atomic.set p.a_fired true;
          (* Count before [fire]: it raises. *)
          Trace.count "faultpoint.fired";
          Trace.instant
            ~attrs:(fun () ->
              [ ("site", Trace.Str site);
                ("kind", Trace.Str (kind_name p.a_kind)) ])
            "faultpoint.fired";
          if corrupt then fired := true else fire site p.a_kind
        end
      end)
    (Atomic.get state);
  !fired

let check site =
  match Atomic.get state with
  | [] -> ()
  | _ -> ignore (hit_slow site ~corrupt:false)

let take_corrupt site =
  match Atomic.get state with
  | [] -> false
  | _ -> hit_slow site ~corrupt:true
