(* Circuit breaker for the serve client. All state lives in Atomics so
   a breaker can be shared by concurrent callers (reader threads, a
   batch driver) without a lock: the only multi-step transition —
   claiming the half-open probe — is a single compare-and-set. *)

type config = {
  failure_threshold : int;
  reset_after : float;
  now : unit -> float;
}

let default =
  { failure_threshold = 5; reset_after = 1.0; now = Unix.gettimeofday }

(* Process-wide monotone count of transitions into Open, across every
   breaker instance: the chaos soak asserts this never decreases, and
   a fleet-level caller can watch it without holding each client. *)
let total_trips_cell : int Atomic.t = Atomic.make 0

let total_trips () = Atomic.get total_trips_cell

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type t = {
  cfg : config;
  is_open : bool Atomic.t;
  failures : int Atomic.t;  (* consecutive failures while closed *)
  opened_at : float Atomic.t;  (* meaningful while is_open *)
  probing : bool Atomic.t;  (* half-open probe claimed, unresolved *)
  trips : int Atomic.t;
}

let create ?(config = default) () =
  {
    cfg = { config with failure_threshold = max 1 config.failure_threshold };
    is_open = Atomic.make false;
    failures = Atomic.make 0;
    opened_at = Atomic.make 0.;
    probing = Atomic.make false;
    trips = Atomic.make 0;
  }

let state t =
  if not (Atomic.get t.is_open) then Closed
  else if
    Atomic.get t.probing
    || t.cfg.now () -. Atomic.get t.opened_at >= t.cfg.reset_after
  then Half_open
  else Open

type decision = Proceed | Probe | Reject of float

let acquire t =
  if not (Atomic.get t.is_open) then Proceed
  else
    let elapsed = t.cfg.now () -. Atomic.get t.opened_at in
    if elapsed < t.cfg.reset_after then Reject (t.cfg.reset_after -. elapsed)
    else if Atomic.compare_and_set t.probing false true then Probe
    else Reject 0.

(* opened_at is written before is_open so a concurrent [acquire] that
   observes the open flag also observes a fresh timestamp. *)
let trip t =
  Atomic.set t.opened_at (t.cfg.now ());
  Atomic.set t.is_open true;
  Atomic.incr t.trips;
  Atomic.incr total_trips_cell

let success t =
  Atomic.set t.failures 0;
  Atomic.set t.probing false;
  Atomic.set t.is_open false

let failure t =
  if Atomic.get t.is_open then begin
    (* A failed half-open probe (or a straggler from before the trip):
       re-open for a full reset window. *)
    Atomic.set t.probing false;
    trip t
  end
  else if Atomic.fetch_and_add t.failures 1 + 1 >= t.cfg.failure_threshold
  then begin
    Atomic.set t.failures 0;
    trip t
  end

let trips t = Atomic.get t.trips
