(** Capped-exponential-backoff retry for transient internal faults.

    Both fleet front ends — [lalrgen batch] and the [lalrgen serve]
    worker pool — face the same situation: a job failed with a typed
    internal fault that {e may} be transient (the deterministic
    fire-once injections model exactly that; so do real environmental
    conditions such as a flaky filesystem under the store). The shared
    policy is: retry a bounded number of times, waiting
    [base * multiplier^(n-1)] between attempts, capped at [max_delay],
    with a deterministic jitter factor so a fleet of workers that
    failed together does not retry in lockstep.

    Everything is injectable and deterministic: the sleep function is
    a parameter (tests pass a recorder and run in microseconds), and
    the jitter stream is a pure hash of [(seed, attempt)] — no
    [Random], no wall clock, so the delay sequence for a given policy
    is a constant that tests can pin exactly. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first; >= 1 *)
  base_delay : float;  (** seconds before the second attempt *)
  multiplier : float;  (** geometric growth per further attempt *)
  max_delay : float;  (** cap on any single delay, pre-jitter *)
  jitter : float;
      (** fraction in [0, 1): each delay is scaled by a deterministic
          factor drawn from [1 - jitter, 1 + jitter] *)
  seed : int;  (** jitter stream seed *)
}

val default : policy
(** 2 attempts (one retry), 50 ms base, x2, 1 s cap, 25% jitter —
    the batch/serve production policy. *)

val delay_for : policy -> attempt:int -> float
(** The delay in seconds slept {e after} failed [attempt] (1-based),
    jitter applied. Pure: same policy, same attempt, same answer. *)

val run :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  retryable:('a -> bool) ->
  (attempt:int -> 'a) ->
  'a * int
(** [run ~retryable f] calls [f ~attempt:1]; while the result is
    [retryable] and attempts remain, sleeps the backoff delay and
    calls [f] again with the next attempt number. Returns the final
    result (retryable or not) and the number of retries performed
    (0 when the first attempt stood). [sleep] defaults to
    [Unix.sleepf]. Exceptions from [f] are not caught — callers that
    want exception retries convert to data first (both fleet callers
    already run jobs behind a typed failure boundary). *)
