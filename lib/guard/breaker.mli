(** A closed/open/half-open circuit breaker on Atomics.

    The serve client ({!Lalr_serve.Client}) guards every transport
    attempt with one of these so a dead or overloaded daemon is shed
    {e locally} — a fast in-process rejection — instead of each caller
    retry-storming the endpoint:

    - {b closed}: traffic flows; {!failure} counts {e consecutive}
      failures and trips to open at [failure_threshold];
    - {b open}: {!acquire} rejects immediately (with the time left
      until a probe is allowed) for [reset_after] seconds;
    - {b half-open}: after the window, {e exactly one} caller wins the
      probe slot ({!acquire} returns [Probe], every concurrent caller
      keeps getting [Reject]); the probe's {!success} closes the
      breaker, its {!failure} re-opens it for a full window.

    All state is [Atomic.t] (lalr_check D001-clean) and the clock is
    injectable, so state-transition tests run without sleeping. The
    breaker never sleeps and never raises; callers compose it with
    {!Retry} for backoff {e inside} an acquired attempt. *)

type config = {
  failure_threshold : int;
      (** consecutive failures that trip closed → open; >= 1 (clamped) *)
  reset_after : float;  (** seconds open before a half-open probe *)
  now : unit -> float;  (** injectable clock *)
}

val default : config
(** 5 consecutive failures, 1 s reset window, [Unix.gettimeofday]. *)

type t

val create : ?config:config -> unit -> t
(** A fresh breaker in the closed state. *)

type state = Closed | Open | Half_open

val state : t -> state
(** Observed state: [Half_open] once the reset window has elapsed
    (whether or not a probe has been claimed yet). *)

val state_name : state -> string
(** ["closed"], ["open"], ["half-open"]. *)

type decision =
  | Proceed  (** closed: go ahead *)
  | Probe
      (** half-open and this caller won the single probe slot; it MUST
          report {!success} or {!failure} to release it *)
  | Reject of float
      (** open (or a probe is already in flight): shed locally; the
          payload is the seconds left until a probe is allowed (0 when
          only the in-flight probe blocks) *)

val acquire : t -> decision
(** Consult the breaker before a transport attempt. Never blocks. *)

val success : t -> unit
(** Report a successful attempt: resets the failure count, releases
    the probe slot, closes the breaker. *)

val failure : t -> unit
(** Report a failed attempt: while closed, counts toward the
    threshold; while open/half-open, re-opens for a full window and
    releases the probe slot. *)

val trips : t -> int
(** Monotone count of this breaker's transitions into open (including
    re-opens after a failed probe). *)

val total_trips : unit -> int
(** Process-wide monotone trip count across every breaker instance —
    the counter the chaos soak asserts never decreases. *)
